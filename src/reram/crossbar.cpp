#include "reram/crossbar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "reram/kernels/kernels.hpp"

namespace autohet::reram {

namespace {

/// Packs the 8 input bit planes of one sample into xbits[xb * words + w]
/// (bit i of plane xb = bit xb of input[i * stride]). `stride` is the
/// element distance between consecutive rows of this sample: 1 for a
/// contiguous input vector, `count` for one column of a transposed
/// rows × count batch.
void pack_planes(const std::uint8_t* input, std::int64_t rows,
                 std::int64_t stride, std::int64_t words,
                 std::uint64_t* xbits) {
  std::fill_n(xbits, static_cast<std::size_t>(8 * words), std::uint64_t{0});
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::uint8_t x = input[i * stride];
    if (x == 0) continue;
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    const std::int64_t word = i >> 6;
    for (int xb = 0; xb < 8; ++xb) {
      if ((x >> xb) & 1u) xbits[xb * words + word] |= bit;
    }
  }
}

/// popx[s*8 + xb] and refs[s] for `count` packed samples: the per-plane
/// popcounts feed the multilevel sign-plane complement, and the reference
/// term 128·Σx falls out of them for free (Σ_i x[i] = Σ_xb 2^xb·popcount).
void fill_multilevel_terms(const std::uint64_t* xbits, std::int64_t count,
                           std::int64_t words, std::int64_t* popx,
                           std::int64_t* refs) {
  const auto& ops = kernels::ops();
  for (std::int64_t s = 0; s < count; ++s) {
    std::int64_t sum = 0;
    for (int xb = 0; xb < 8; ++xb) {
      const std::int64_t n =
          ops.popcount_words(xbits + (s * 8 + xb) * words, words);
      popx[s * 8 + xb] = n;
      sum += n << xb;
    }
    refs[s] = 128 * sum;
  }
}

}  // namespace

LogicalCrossbar::LogicalCrossbar(mapping::CrossbarShape shape)
    : shape_(shape),
      cells_(static_cast<std::size_t>(shape.cells()), 0),
      packed_words_((shape.rows + 63) / 64) {
  AUTOHET_CHECK(shape.rows > 0 && shape.cols > 0, "invalid crossbar shape");
}

void LogicalCrossbar::program(std::span<const std::int8_t> weights,
                              std::int64_t rows, std::int64_t cols) {
  AUTOHET_CHECK(rows >= 0 && rows <= shape_.rows, "rows exceed crossbar");
  AUTOHET_CHECK(cols >= 0 && cols <= shape_.cols, "cols exceed crossbar");
  AUTOHET_CHECK(static_cast<std::int64_t>(weights.size()) == rows * cols,
                "weight block size mismatch");
  std::fill(cells_.begin(), cells_.end(), static_cast<std::int8_t>(0));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      cells_[static_cast<std::size_t>(i * shape_.cols + j)] =
          weights[static_cast<std::size_t>(i * cols + j)];
    }
  }
  rows_used_ = rows;
  cols_used_ = cols;
  repack();
}

void LogicalCrossbar::program_cell(std::int64_t row, std::int64_t col,
                                   std::int8_t value) {
  AUTOHET_CHECK(row >= 0 && row < shape_.rows && col >= 0 && col < shape_.cols,
                "cell index out of range");
  cells_[static_cast<std::size_t>(row * shape_.cols + col)] = value;
  rows_used_ = std::max(rows_used_, row + 1);
  cols_used_ = std::max(cols_used_, col + 1);
  if (!packed_.empty()) {
    const auto bits = static_cast<std::uint8_t>(value);
    const std::uint64_t bit = std::uint64_t{1} << (row & 63);
    const std::int64_t word = row >> 6;
    for (int wb = 0; wb < 8; ++wb) {
      std::uint64_t& w = packed_[static_cast<std::size_t>(
          (wb * shape_.cols + col) * packed_words_ + word)];
      if ((bits >> wb) & 1u) {
        w |= bit;
      } else {
        w &= ~bit;
      }
    }
  }
}

void LogicalCrossbar::ensure_packed() {
  if (packed_.empty()) repack();
}

void LogicalCrossbar::repack() {
  packed_.assign(static_cast<std::size_t>(8 * shape_.cols * packed_words_), 0);
  // All shape_.rows wordlines are packed (fault burn-in can set cells outside
  // the used region); the kernels' input masks zero everything past
  // rows_used, so stray bits beyond the used rows never contribute.
  for (std::int64_t r = 0; r < shape_.rows; ++r) {
    const std::int8_t* row = cells_.data() + r * shape_.cols;
    const std::uint64_t bit = std::uint64_t{1} << (r & 63);
    const std::int64_t word = r >> 6;
    for (std::int64_t j = 0; j < shape_.cols; ++j) {
      const auto bits = static_cast<std::uint8_t>(row[j]);
      if (bits == 0) continue;
      for (int wb = 0; wb < 8; ++wb) {
        if ((bits >> wb) & 1u) {
          packed_[static_cast<std::size_t>(
              (wb * shape_.cols + j) * packed_words_ + word)] |= bit;
        }
      }
    }
  }
}

std::vector<std::int32_t> LogicalCrossbar::mvm_bit_serial(
    std::span<const std::uint8_t> input) const {
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  thread_local kernels::KernelScratch scratch;
  mvm_bit_serial_accum(input, acc.data(), scratch);
  return acc;
}

void LogicalCrossbar::mvm_bit_serial_accum(
    std::span<const std::uint8_t> input, std::int32_t* out,
    kernels::KernelScratch& scratch) const {
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  if (packed_.empty()) {
    // Scalar datapath, accumulating into the caller's buffer.
    for (int xb = 0; xb < 8; ++xb) {
      for (int wb = 0; wb < 8; ++wb) {
        const std::int64_t scale =
            (wb == 7) ? -(std::int64_t{1} << (xb + wb))
                      : (std::int64_t{1} << (xb + wb));
        for (std::int64_t j = 0; j < cols_used_; ++j) {
          std::int32_t bitline_sum = 0;
          for (std::int64_t i = 0; i < rows_used_; ++i) {
            const unsigned xbit =
                (input[static_cast<std::size_t>(i)] >> xb) & 1u;
            if (!xbit) continue;
            const auto cell = static_cast<std::uint8_t>(
                cells_[static_cast<std::size_t>(i * shape_.cols + j)]);
            bitline_sum += static_cast<std::int32_t>((cell >> wb) & 1u);
          }
          out[j] += static_cast<std::int32_t>(scale * bitline_sum);
        }
      }
    }
    return;
  }
  // One AND+popcount pass per (weight plane, column, input plane): the 64
  // wordline passes of the scalar path collapse into words word ops, run by
  // the dispatched kernel variant (count == 1 keeps acc_t[j·1+0] == out[j]).
  const std::int64_t words = (rows_used_ + 63) / 64;
  std::uint64_t* xbits =
      scratch.input_planes(static_cast<std::size_t>(8 * words));
  pack_planes(input.data(), rows_used_, 1, words, xbits);
  kernels::ops().bit_serial_mvm(packed_.data(), shape_.cols, packed_words_,
                                cols_used_, words, xbits, 1, out);
  OBS_COUNTER_ADD("autohet_kernel_bit_serial_words_total",
                  64 * cols_used_ * words);
}

std::vector<std::int32_t> LogicalCrossbar::mvm_bit_serial_scalar(
    std::span<const std::uint8_t> input) const {
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  // For every input bit cycle (1-bit DAC) and every weight bit plane
  // (1-bit cells), form the binary bitline sums and shift-add them in.
  for (int xb = 0; xb < 8; ++xb) {
    for (int wb = 0; wb < 8; ++wb) {
      // Weight bit 7 is the two's-complement sign plane: value -2^7.
      const std::int64_t scale =
          (wb == 7) ? -(std::int64_t{1} << (xb + wb))
                    : (std::int64_t{1} << (xb + wb));
      for (std::int64_t j = 0; j < cols_used_; ++j) {
        std::int32_t bitline_sum = 0;  // current summation on the bitline
        for (std::int64_t i = 0; i < rows_used_; ++i) {
          const unsigned xbit = (input[static_cast<std::size_t>(i)] >> xb) & 1u;
          if (!xbit) continue;
          const auto cell = static_cast<std::uint8_t>(
              cells_[static_cast<std::size_t>(i * shape_.cols + j)]);
          bitline_sum += static_cast<std::int32_t>((cell >> wb) & 1u);
        }
        acc[static_cast<std::size_t>(j)] +=
            static_cast<std::int32_t>(scale * bitline_sum);
      }
    }
  }
  return acc;
}

std::vector<std::int32_t> LogicalCrossbar::mvm_multilevel(
    std::span<const std::uint8_t> input, int cell_bits) const {
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  thread_local kernels::KernelScratch scratch;
  mvm_multilevel_accum(input, cell_bits, acc.data(), scratch);
  return acc;
}

void LogicalCrossbar::mvm_multilevel_accum(
    std::span<const std::uint8_t> input, int cell_bits, std::int32_t* out,
    kernels::KernelScratch& scratch) const {
  AUTOHET_CHECK(cell_bits > 0 && cell_bits <= 8 && 8 % cell_bits == 0,
                "cell_bits must divide 8");
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  if (packed_.empty()) {
    const std::vector<std::int32_t> acc = mvm_multilevel_scalar(input,
                                                                cell_bits);
    for (std::int64_t j = 0; j < cols_used_; ++j) {
      out[j] += acc[static_cast<std::size_t>(j)];
    }
    return;
  }
  // Offset-binary level sums decompose exactly into per-bit bitline sums:
  // bit k of v = w + 128 is the packed two's-complement plane k for k < 7
  // and its complement for k = 7 (v = w ^ 0x80 on the uint8 pattern), so
  // Σ_p 2^{p·b}·level_p = Σ_k 2^k·bit_k and the result is independent of
  // cell_bits. popcount(x & ~p7) = popcount(x) − popcount(x & p7) keeps the
  // complement implicit (input bits past rows_used are zero in x); the
  // per-plane popcounts and the 128·Σx reference term are caller-computed
  // once and handed to the dispatched kernel.
  const std::int64_t words = (rows_used_ + 63) / 64;
  std::uint64_t* xbits =
      scratch.input_planes(static_cast<std::size_t>(8 * words));
  pack_planes(input.data(), rows_used_, 1, words, xbits);
  std::int64_t* terms = scratch.sample_terms(9);  // popx[0..8) + refs[0]
  fill_multilevel_terms(xbits, 1, words, terms, terms + 8);
  kernels::ops().multilevel_mvm(packed_.data(), shape_.cols, packed_words_,
                                cols_used_, words, xbits, 1, terms, terms + 8,
                                out);
  OBS_COUNTER_ADD("autohet_kernel_multilevel_words_total",
                  64 * cols_used_ * words);
}

std::vector<std::int32_t> LogicalCrossbar::mvm_multilevel_scalar(
    std::span<const std::uint8_t> input, int cell_bits) const {
  AUTOHET_CHECK(cell_bits > 0 && cell_bits <= 8 && 8 % cell_bits == 0,
                "cell_bits must divide 8");
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  const int planes = 8 / cell_bits;
  const unsigned cell_mask = (1u << cell_bits) - 1u;
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  // Reference column: 128 · Σx, subtracted once at the end to undo the
  // offset-binary encoding (w + 128 stored as unsigned conductances).
  std::int64_t ref = 0;
  for (std::int64_t i = 0; i < rows_used_; ++i) {
    ref += 128 * static_cast<std::int64_t>(input[static_cast<std::size_t>(i)]);
  }
  for (int xb = 0; xb < 8; ++xb) {
    for (int p = 0; p < planes; ++p) {
      const std::int64_t scale = std::int64_t{1} << (xb + p * cell_bits);
      for (std::int64_t j = 0; j < cols_used_; ++j) {
        std::int64_t bitline_sum = 0;
        for (std::int64_t i = 0; i < rows_used_; ++i) {
          const unsigned xbit = (input[static_cast<std::size_t>(i)] >> xb) & 1u;
          if (!xbit) continue;
          const auto offset = static_cast<unsigned>(
              static_cast<int>(
                  cells_[static_cast<std::size_t>(i * shape_.cols + j)]) +
              128);
          bitline_sum += static_cast<std::int64_t>(
              (offset >> (p * cell_bits)) & cell_mask);
        }
        acc[static_cast<std::size_t>(j)] +=
            static_cast<std::int32_t>(scale * bitline_sum);
      }
    }
  }
  for (auto& v : acc) v -= static_cast<std::int32_t>(ref);
  return acc;
}

void LogicalCrossbar::apply_variation(common::Rng& rng, double sigma) {
  AUTOHET_CHECK(sigma >= 0.0, "variation sigma must be non-negative");
  if (sigma == 0.0) return;
  for (auto& cell : cells_) {
    if (cell == 0) continue;  // unprogrammed (high-resistance) cells stay off
    const double noisy =
        static_cast<double>(cell) + rng.normal(0.0, sigma * 127.0);
    const double clamped = std::clamp(noisy, -128.0, 127.0);
    cell = static_cast<std::int8_t>(std::lround(clamped));
  }
  if (!packed_.empty()) repack();
}

FaultMapStats LogicalCrossbar::apply_faults(const FaultModel& model,
                                            std::uint64_t crossbar_id,
                                            bool reference_path) {
  const FaultMapStats stats =
      reference_path
          ? model.apply_reference(cells_, shape_.rows, shape_.cols,
                                  shape_.cols, crossbar_id)
          : model.apply(cells_, shape_.rows, shape_.cols, shape_.cols,
                        crossbar_id);
  if (!packed_.empty() && !model.ideal()) repack();
  return stats;
}

FaultMapStats LogicalCrossbar::apply_faults_recording(
    const FaultModel& model, std::uint64_t crossbar_id,
    std::vector<StuckCandidate>& out) {
  const FaultMapStats stats = model.apply_recording(
      cells_, shape_.rows, shape_.cols, shape_.cols, crossbar_id, out);
  if (!packed_.empty()) repack();
  return stats;
}

FaultMapStats LogicalCrossbar::replay_stuck_faults(
    const FaultModel& model, std::span<const StuckCandidate> hits) {
  const FaultMapStats delta =
      model.replay_stuck(cells_, shape_.cols, shape_.cols, hits);
  if (!packed_.empty() && (delta.stuck_at_zero || delta.stuck_at_one)) {
    repack();
  }
  return delta;
}

void LogicalCrossbar::mvm_read_noisy_accum(
    std::span<const std::uint8_t> input, common::Rng& rng,
    double weight_sigma, std::int32_t* out) const {
  if (weight_sigma == 0.0) {
    mvm_reference_accum(input, out);
    return;
  }
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  for (std::int64_t i = 0; i < rows_used_; ++i) {
    const std::int32_t x = input[static_cast<std::size_t>(i)];
    if (x == 0) continue;  // gated wordline: cells are not sensed
    const std::int8_t* row = cells_.data() + i * shape_.cols;
    for (std::int64_t j = 0; j < cols_used_; ++j) {
      const double noisy =
          static_cast<double>(row[j]) + rng.normal(0.0, weight_sigma);
      const auto w = static_cast<std::int32_t>(
          std::lround(std::clamp(noisy, -128.0, 127.0)));
      out[j] += x * w;
    }
  }
}

std::vector<std::int32_t> LogicalCrossbar::mvm_read_noisy(
    std::span<const std::uint8_t> input, common::Rng& rng,
    double weight_sigma) const {
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  mvm_read_noisy_accum(input, rng, weight_sigma, acc.data());
  return acc;
}

void LogicalCrossbar::mvm_reference_accum(std::span<const std::uint8_t> input,
                                          std::int32_t* out) const {
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  // Blocked GEMV: gather up to four nonzero-activation rows and fuse their
  // widening int8 multiply-adds into one pass over the accumulators, so the
  // out[] traffic amortizes across rows (integer adds reassociate exactly).
  const std::int64_t stride = shape_.cols;
  std::int64_t rows[4];
  std::int64_t i = 0;
  while (i < rows_used_) {
    int n = 0;
    while (i < rows_used_ && n < 4) {
      if (input[static_cast<std::size_t>(i)] != 0) rows[n++] = i;
      ++i;
    }
    if (n == 4) {
      const std::int32_t x0 = input[static_cast<std::size_t>(rows[0])];
      const std::int32_t x1 = input[static_cast<std::size_t>(rows[1])];
      const std::int32_t x2 = input[static_cast<std::size_t>(rows[2])];
      const std::int32_t x3 = input[static_cast<std::size_t>(rows[3])];
      const std::int8_t* r0 = cells_.data() + rows[0] * stride;
      const std::int8_t* r1 = cells_.data() + rows[1] * stride;
      const std::int8_t* r2 = cells_.data() + rows[2] * stride;
      const std::int8_t* r3 = cells_.data() + rows[3] * stride;
      for (std::int64_t j = 0; j < cols_used_; ++j) {
        out[j] += x0 * static_cast<std::int32_t>(r0[j]) +
                  x1 * static_cast<std::int32_t>(r1[j]) +
                  x2 * static_cast<std::int32_t>(r2[j]) +
                  x3 * static_cast<std::int32_t>(r3[j]);
      }
    } else {
      for (int m = 0; m < n; ++m) {
        const std::int32_t x = input[static_cast<std::size_t>(rows[m])];
        const std::int8_t* row = cells_.data() + rows[m] * stride;
        for (std::int64_t j = 0; j < cols_used_; ++j) {
          out[j] += x * static_cast<std::int32_t>(row[j]);
        }
      }
    }
  }
}

void LogicalCrossbar::mvm_reference_batch_accum(const std::uint8_t* inputs_t,
                                                std::int64_t count,
                                                std::int32_t* acc_t) const {
  kernels::ops().reference_batch(cells_.data(), shape_.cols, rows_used_,
                                 cols_used_, inputs_t, count, acc_t);
  OBS_COUNTER_ADD("autohet_kernel_reference_macs_total",
                  rows_used_ * cols_used_ * count);
}

void LogicalCrossbar::mvm_bit_serial_batch_accum(
    const std::uint8_t* inputs_t, std::int64_t count, std::int32_t* acc_t,
    kernels::KernelScratch& scratch) const {
  AUTOHET_CHECK(is_packed(), "batched packed MVM requires packed planes");
  const std::int64_t words = (rows_used_ + 63) / 64;
  std::uint64_t* xbits =
      scratch.input_planes(static_cast<std::size_t>(count * 8 * words));
  for (std::int64_t s = 0; s < count; ++s) {
    pack_planes(inputs_t + s, rows_used_, count, words, xbits + s * 8 * words);
  }
  kernels::ops().bit_serial_mvm(packed_.data(), shape_.cols, packed_words_,
                                cols_used_, words, xbits, count, acc_t);
  OBS_COUNTER_ADD("autohet_kernel_bit_serial_words_total",
                  64 * cols_used_ * words * count);
}

void LogicalCrossbar::mvm_multilevel_batch_accum(
    const std::uint8_t* inputs_t, std::int64_t count, int cell_bits,
    std::int32_t* acc_t, kernels::KernelScratch& scratch) const {
  AUTOHET_CHECK(cell_bits > 0 && cell_bits <= 8 && 8 % cell_bits == 0,
                "cell_bits must divide 8");
  AUTOHET_CHECK(is_packed(), "batched packed MVM requires packed planes");
  const std::int64_t words = (rows_used_ + 63) / 64;
  std::uint64_t* xbits =
      scratch.input_planes(static_cast<std::size_t>(count * 8 * words));
  for (std::int64_t s = 0; s < count; ++s) {
    pack_planes(inputs_t + s, rows_used_, count, words, xbits + s * 8 * words);
  }
  std::int64_t* terms =
      scratch.sample_terms(static_cast<std::size_t>(count * 9));
  fill_multilevel_terms(xbits, count, words, terms, terms + count * 8);
  kernels::ops().multilevel_mvm(packed_.data(), shape_.cols, packed_words_,
                                cols_used_, words, xbits, count, terms,
                                terms + count * 8, acc_t);
  OBS_COUNTER_ADD("autohet_kernel_multilevel_words_total",
                  64 * cols_used_ * words * count);
}

std::vector<std::int32_t> LogicalCrossbar::mvm_reference(
    std::span<const std::uint8_t> input) const {
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  mvm_reference_accum(input, acc.data());
  return acc;
}

std::vector<std::int32_t> LogicalCrossbar::mvm_reference_scalar(
    std::span<const std::uint8_t> input) const {
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  for (std::int64_t i = 0; i < rows_used_; ++i) {
    const std::int32_t x = input[static_cast<std::size_t>(i)];
    if (x == 0) continue;
    const std::int8_t* row = cells_.data() + i * shape_.cols;
    for (std::int64_t j = 0; j < cols_used_; ++j) {
      acc[static_cast<std::size_t>(j)] += x * static_cast<std::int32_t>(row[j]);
    }
  }
  return acc;
}

}  // namespace autohet::reram
