// Memoized, thread-parallel hardware evaluation engine.
//
// Every DDPG episode, every baseline sweep, and every figure benchmark
// funnels through one question: "what does configuration (a_1..a_L) cost?"
// Across thousands of episodes there are only L×C distinct per-layer
// evaluations (layer energy/latency/utilization depend only on the layer,
// the candidate shape, and the device parameters — not on the rest of the
// action vector), and full configurations repeat heavily once a search
// converges. The engine exploits both:
//
//   1. An L×C table of `LayerReport`s is precomputed once at construction
//      (the allocator's per-layer tile count is action-independent: it is
//      ceil(logical_crossbars / pes_per_tile) before sharing).
//   2. Network-level aggregation (area of surviving tiles, tile-shared
//      draining, system utilization) runs on a compact per-layer summary —
//      only each layer's one partially-filled tile can be drained by
//      Algorithm 1, so the two-pointer pass touches at most L tiles
//      instead of materializing every `Tile`.
//   3. Full `NetworkReport`s are memoized in an LRU keyed by the action
//      vector, and `evaluate_batch()` fans independent configurations out
//      over a `common::ThreadPool`.
//
// Determinism contract: results are bit-identical to the uncached
// `evaluate_network` path. The per-layer reports come from the same
// `evaluate_layer` with the same arguments; the area sums add the same
// `tile_area_contribution` values in the same tile-id order; utilization
// divides the same exact integer sums. Tested field-by-field in
// tests/test_eval_engine.cpp.
//
// Thread-safety contract: after construction the L×C table and all derived
// per-candidate constants are immutable; the only mutable state is the LRU
// memo (+ its hit/miss/eviction counters), guarded by an internal mutex.
// `evaluate()` and `evaluate_batch()` are safe to call concurrently from
// any thread; uncached computation itself runs lock-free.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "mapping/crossbar_shape.hpp"
#include "mapping/plan.hpp"
#include "nn/layer.hpp"
#include "reram/functional.hpp"
#include "reram/hardware_model.hpp"

namespace autohet::reram {

struct EvalEngineConfig {
  /// Maximum memoized `NetworkReport`s (LRU-evicted). 0 disables the memo
  /// (the L×C table still accelerates every evaluation).
  std::size_t memo_capacity = 4096;
  /// Worker threads for `evaluate_batch`. 0 = evaluate serially on the
  /// calling thread; N > 0 = lazily create an internal ThreadPool(N).
  std::size_t threads = 0;
  /// Maximum memoized `RobustnessReport`s for evaluate_robustness_cached
  /// (LRU-evicted; 0 disables that memo). Sized for a search loop: ~500
  /// episodes revisit far fewer distinct allocations once converged.
  std::size_t robustness_memo_capacity = 1024;
};

class EvaluationEngine {
 public:
  /// Precomputes the L×C `LayerReport` table. `layers` must contain only
  /// mappable layers; `candidates` is the action space.
  EvaluationEngine(std::vector<nn::LayerSpec> layers,
                   std::vector<mapping::CrossbarShape> candidates,
                   AcceleratorConfig accel, EvalEngineConfig config = {});

  std::size_t num_layers() const noexcept { return layers_.size(); }
  std::size_t num_candidates() const noexcept { return candidates_.size(); }
  const AcceleratorConfig& accel() const noexcept { return accel_; }

  /// The precomputed per-layer report for (layer, candidate) — exactly what
  /// `evaluate_layer` returns for that pair (used by the greedy baseline
  /// and the Fig. 5 bench).
  const LayerReport& layer_report(std::size_t layer,
                                  std::size_t candidate) const;

  /// Full-network evaluation of one action vector; bit-identical to
  /// `evaluate_network` on the same inputs. Memoized.
  NetworkReport evaluate(const std::vector<std::size_t>& actions) const;

  /// Evaluation of a compiled DeploymentPlan. The plan must have been
  /// compiled for this engine's layers and accelerator config (checked),
  /// and every plan shape must be in the candidate set — the call then maps
  /// shapes back to candidate indices and shares the memo with the
  /// action-vector path. Bit-identical to `evaluate_plan`.
  NetworkReport evaluate(const plan::DeploymentPlan& plan) const;

  /// Evaluates many independent action vectors, deduplicating repeats and
  /// fanning cache misses out over the thread pool (serial when
  /// `config.threads == 0`). Results are positionally aligned with `batch`
  /// and independent of thread scheduling.
  std::vector<NetworkReport> evaluate_batch(
      const std::vector<std::vector<std::size_t>>& batch) const;

  /// Monte-Carlo accuracy-under-faults of one action vector: maps each
  /// action to its candidate shape and runs `monte_carlo_robustness` on the
  /// functional fabric. `model`'s mappable layers must match the engine's
  /// layer count (same order). Reports are not memoized, but the engine
  /// passes its `TrialFabricCache` (unless `options.cache` is already set):
  /// fault sweeps that revisit one configuration across stuck-rate grids
  /// record each trial's burn-in once and replay it per rate point, and
  /// share the ideal references across the grid — byte-identical reports,
  /// large wall-time savings. Use the analytic `fault_vulnerability` in
  /// `evaluate()` reports for in-loop search feedback and this for the
  /// expensive ground truth.
  /// When `options.threads` is the serial default (1) and the engine was
  /// configured with worker threads, the Monte-Carlo trials fan out across
  /// that many threads (byte-identical reports either way).
  RobustnessReport evaluate_robustness(
      const nn::Model& model, const std::vector<std::size_t>& actions,
      const FaultConfig& faults, const RobustnessOptions& options = {}) const;

  /// Memoized evaluate_robustness for in-loop (per-episode) use: reports
  /// are cached in an LRU keyed by (model, allocation fingerprint,
  /// FaultConfig, budget knobs), so a search that revisits an allocation
  /// pays the Monte-Carlo cost once. Pair it with a small adaptive
  /// `RobustnessBudget` — the memo amortizes repeats, the budget bounds
  /// first-visit cost. Thread settings are deliberately not part of the
  /// key (reports are byte-identical at any thread count).
  RobustnessReport evaluate_robustness_cached(
      const nn::Model& model, const std::vector<std::size_t>& actions,
      const FaultConfig& faults, const RobustnessOptions& options = {}) const;

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_rate() const noexcept {
      const double total = static_cast<double>(hits + misses);
      return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
    }
  };
  CacheStats cache_stats() const;
  /// Hit/miss/eviction counters of the evaluate_robustness_cached memo.
  CacheStats robustness_cache_stats() const;
  void clear_cache() const;

 private:
  // Per-(layer, candidate) action-independent precompute.
  struct LayerCandidate {
    LayerReport report;             ///< evaluate_layer output, verbatim
    std::int64_t useful_cells = 0;  ///< Cin·k²·Cout
    std::int64_t tiles = 0;         ///< ceil(logical_xbs / pes_per_tile)
    std::int64_t last_tile_empty = 0;  ///< free PEs in the layer's last tile
  };
  // Per-candidate constants.
  struct CandidateInfo {
    mapping::CrossbarShape shape;
    TileAreaContribution tile_area;
    std::int64_t cells_per_tile = 0;  ///< pes_per_tile × rows × cols
  };

  const LayerCandidate& cell(std::size_t layer, std::size_t cand) const {
    return table_[layer * candidates_.size() + cand];
  }

  /// The uncached compute path (pure; lock-free).
  NetworkReport compute(const std::vector<std::size_t>& actions) const;

  std::vector<nn::LayerSpec> layers_;
  std::vector<mapping::CrossbarShape> candidates_;
  AcceleratorConfig accel_;
  EvalEngineConfig config_;
  std::vector<LayerCandidate> table_;   ///< L×C, row-major by layer
  std::vector<CandidateInfo> cand_info_;

  // ---- LRU memo (guarded by mutex_) ----
  struct MemoEntry {
    std::vector<std::size_t> actions;
    NetworkReport report;
  };
  struct KeyHash {
    std::size_t operator()(const std::vector<std::size_t>& v) const noexcept {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (std::size_t x : v) {
        h ^= static_cast<std::uint64_t>(x);
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  using LruList = std::list<MemoEntry>;
  mutable std::mutex mutex_;
  mutable LruList lru_;  ///< front = most recently used
  mutable std::unordered_map<std::vector<std::size_t>, LruList::iterator,
                             KeyHash>
      memo_;
  mutable CacheStats stats_;

  // ---- robustness-report memo (guarded by mutex_) ----
  /// Everything evaluate_robustness_cached's result depends on. Thread /
  /// pool / cache knobs are excluded on purpose: reports are byte-identical
  /// across them, so one memo serves every execution configuration.
  struct RobustnessKey {
    const nn::Model* model = nullptr;
    std::vector<std::size_t> actions;
    FaultConfig faults;
    int trials = 0;
    int samples = 0;
    std::uint64_t input_seed = 0;
    DatapathMode mode = DatapathMode::kInteger;
    KernelPolicy kernels = KernelPolicy::kFast;
    RobustnessBudget budget;
    bool operator==(const RobustnessKey&) const = default;
  };
  struct RobustnessKeyHash {
    std::size_t operator()(const RobustnessKey& k) const noexcept;
  };
  using RobLruList = std::list<std::pair<RobustnessKey, RobustnessReport>>;
  mutable RobLruList rob_lru_;  ///< front = most recently used
  mutable std::unordered_map<RobustnessKey, RobLruList::iterator,
                             RobustnessKeyHash>
      rob_memo_;
  mutable CacheStats rob_stats_;

  mutable std::unique_ptr<common::ThreadPool> pool_;  ///< lazy, when threads>0
  /// Cross-call Monte-Carlo fabric cache for evaluate_robustness (its own
  /// internal locking; byte-identical reports — see TrialFabricCache).
  mutable TrialFabricCache mc_cache_;
  /// Cross-allocation per-layer fabric cache for
  /// evaluate_robustness_cached first visits (its own internal locking;
  /// bit-identical reports — see LayerFabricCache).
  mutable LayerFabricCache layer_cache_;

  // Unsynchronized memo helpers (callers hold mutex_).
  const NetworkReport* lookup_locked(
      const std::vector<std::size_t>& actions) const;
  void insert_locked(const std::vector<std::size_t>& actions,
                     const NetworkReport& report) const;
};

}  // namespace autohet::reram
