#include "reram/noc.hpp"

#include <map>

#include "common/error.hpp"

namespace autohet::reram {

NocReport evaluate_noc(const std::vector<nn::LayerSpec>& layers,
                       const mapping::AllocationResult& allocation,
                       const PlacementResult& placement,
                       const NocParams& params) {
  AUTOHET_CHECK(layers.size() == allocation.layers.size(),
                "layer list does not match allocation");
  // Index placements by tile id.
  std::map<std::int64_t, const TilePlacement*> where;
  for (const auto& p : placement.placements) where[p.tile_id] = &p;

  // Tiles hosting each layer (post-sharing).
  std::map<std::int64_t, std::vector<const TilePlacement*>> tiles_of_layer;
  for (const auto& tile : allocation.tiles) {
    if (tile.released) continue;
    const auto it = where.find(tile.id);
    AUTOHET_CHECK(it != where.end(),
                  "occupied tile " + std::to_string(tile.id) +
                      " missing from placement");
    for (std::int64_t layer_id : tile.layer_ids) {
      tiles_of_layer[layer_id].push_back(it->second);
    }
  }

  NocReport report;
  double weighted_hops = 0.0;
  for (std::size_t k = 0; k + 1 < layers.size(); ++k) {
    const auto& producers = tiles_of_layer[static_cast<std::int64_t>(k)];
    const auto& consumers = tiles_of_layer[static_cast<std::int64_t>(k + 1)];
    AUTOHET_CHECK(!producers.empty() && !consumers.empty(),
                  "layer without hosting tiles");
    double hop_sum = 0.0;
    for (const auto* p : producers) {
      for (const auto* c : consumers) {
        hop_sum += static_cast<double>(
            tile_distance(*p, *c, params.inter_bank_penalty_hops));
      }
    }
    const double mean_hops =
        hop_sum /
        static_cast<double>(producers.size() * consumers.size());
    LinkReport link;
    link.producer_layer = static_cast<std::int64_t>(k);
    link.consumer_layer = static_cast<std::int64_t>(k + 1);
    // 8-bit activations: one byte per output element per inference.
    link.bytes = layers[k].out_channels * layers[k].out_height() *
                 layers[k].out_width();
    link.mean_hops = mean_hops;
    link.energy_nj = static_cast<double>(link.bytes) * mean_hops *
                     params.energy_pj_per_byte_hop * 1e-3;
    report.total_bytes += link.bytes;
    report.total_energy_nj += link.energy_nj;
    weighted_hops += mean_hops * static_cast<double>(link.bytes);
    report.links.push_back(std::move(link));
  }
  if (report.total_bytes > 0) {
    report.mean_hops =
        weighted_hops / static_cast<double>(report.total_bytes);
  }
  return report;
}

}  // namespace autohet::reram
