// Bank and chip capacity model.
//
// §4.1: "Each bank contains 256x256 tiles while each tile contains four PEs
// by default." This module places the occupied tiles of an allocation onto
// the physical bank grid (row-major, bank by bank), checks capacity, and
// reports occupancy — the substrate behind the multi-model residency
// experiments and the Global Controller's tile addressing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "mapping/tile_allocator.hpp"

namespace autohet::reram {

struct BankSpec {
  std::int64_t tile_rows = 256;
  std::int64_t tile_cols = 256;

  std::int64_t tiles() const noexcept { return tile_rows * tile_cols; }
  void validate() const {
    AUTOHET_CHECK(tile_rows > 0 && tile_cols > 0, "bank grid must be positive");
  }
};

struct ChipSpec {
  std::int64_t banks = 4;
  BankSpec bank;

  std::int64_t capacity_tiles() const noexcept {
    return banks * bank.tiles();
  }
  void validate() const {
    AUTOHET_CHECK(banks > 0, "chip needs at least one bank");
    bank.validate();
  }
};

/// Physical coordinates of one logical tile.
struct TilePlacement {
  std::int64_t tile_id = 0;
  std::int64_t bank = 0;
  std::int64_t row = 0;
  std::int64_t col = 0;
};

struct PlacementResult {
  std::vector<TilePlacement> placements;
  std::int64_t banks_used = 0;
  std::int64_t tiles_placed = 0;
  /// Fraction of the chip's tile capacity in use.
  double chip_occupancy = 0.0;
  /// Tiles still free on the chip after placement.
  std::int64_t free_tiles = 0;
};

/// Order in which tile slots are filled within a bank. Tile ids are
/// allocated in layer order, so slot ordering directly controls how close
/// consecutive layers land — the lever the NoC model measures.
enum class PlacementPolicy {
  kRowMajor,  ///< scanline order; adjacent except at row wrap
  kSnake,     ///< boustrophedon: every consecutive slot is grid-adjacent
  kHilbert    ///< Hilbert space-filling curve: strong 2-D locality
};

/// Places the non-released tiles of `tiles` onto the chip, filling each
/// bank's slots in the given policy order. Throws std::invalid_argument
/// when the chip lacks capacity.
PlacementResult place_tiles(const std::vector<mapping::Tile>& tiles,
                            const ChipSpec& chip,
                            PlacementPolicy policy = PlacementPolicy::kRowMajor);

/// The (row, col) of slot `index` within a bank under the policy. Exposed
/// for tests; `index` must be < bank.tiles().
std::pair<std::int64_t, std::int64_t> slot_position(const BankSpec& bank,
                                                    PlacementPolicy policy,
                                                    std::int64_t index);

/// Manhattan distance between two placements, in tile hops — the cost unit
/// for the interconnect traffic model. Tiles in different banks pay a fixed
/// inter-bank penalty on top of the intra-bank hops.
std::int64_t tile_distance(const TilePlacement& a, const TilePlacement& b,
                           std::int64_t inter_bank_penalty = 64);

}  // namespace autohet::reram
