// Event-level schedule of a pipelined inference batch.
//
// evaluate_pipeline() (reram/pipeline.hpp) gives steady-state throughput;
// this module produces the actual timeline: for a batch of images streamed
// through the layer pipeline, when each (image, layer) task starts and
// finishes under the dependency rules
//
//   start(i, k) >= finish(i, k-1)            (dataflow: needs layer k-1's
//                                             output for image i)
//   start(i, k) >= start(i-1, k) + II(k)     (stage occupancy: a stage
//                                             admits one image per
//                                             initiation interval)
//
// with II(k) = serial layer latency / replication(k). From the timeline it
// derives makespan, steady-state throughput (which must agree with the
// analytic model), and per-stage busy fractions — the usual way to see
// where an unbalanced pipeline stalls.
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/crossbar_shape.hpp"
#include "mapping/plan.hpp"
#include "nn/layer.hpp"
#include "reram/hardware_model.hpp"

namespace autohet::reram {

struct TaskTiming {
  std::int64_t image = 0;
  std::int64_t layer = 0;
  double start_ns = 0.0;
  double finish_ns = 0.0;
};

struct ScheduleReport {
  std::vector<TaskTiming> tasks;  ///< image-major, then layer
  double makespan_ns = 0.0;
  /// (batch-1) / (last start gap): converges to the analytic throughput.
  double steady_throughput_inferences_per_s = 0.0;
  /// Busy time of each stage divided by the makespan.
  std::vector<double> stage_busy_fraction;

  const TaskTiming& task(std::int64_t image, std::int64_t layer,
                         std::int64_t num_layers) const {
    return tasks[static_cast<std::size_t>(image * num_layers + layer)];
  }
};

/// Schedules `batch` images through the layer pipeline of a compiled plan.
/// Stage intervals come from the plan's frozen per-layer costs; no mapping
/// is re-derived here. `replication` as in evaluate_pipeline (empty = all
/// ones).
ScheduleReport schedule_batch(
    const plan::DeploymentPlan& plan, std::int64_t batch,
    const std::vector<std::int64_t>& replication = {});

/// Convenience wrapper: compiles `(layers, shapes, config)` into a plan and
/// schedules it. Bit-identical to the plan overload.
ScheduleReport schedule_batch(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config, std::int64_t batch,
    const std::vector<std::int64_t>& replication = {});

}  // namespace autohet::reram
