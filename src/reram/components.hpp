// Circuit-level component models (MNSIM-style).
//
// DeviceParams carries flat calibrated constants; this module derives them
// from parametric component models so that resolution / technology sweeps
// are principled rather than hand-edited:
//
//   * AdcModel      — SAR ADC: conversion energy grows ~2^bits (capacitive
//                     DAC array), area likewise, latency ~bits comparator
//                     cycles.
//   * DacModel      — per-wordline driver.
//   * CrossbarModel — read-cycle latency from a lumped RC wire model, cell
//                     read energy and cell area at a technology node.
//   * SramBufferModel — tile input/output buffers: per-byte access energy
//                     and per-byte area.
//
// derive_device_params() assembles a DeviceParams from these models; at the
// default operating point (10-bit ADC, 1-bit DAC/cells, 32 nm) it agrees
// with DeviceParams' built-in constants (asserted in tests), so the two
// paths are interchangeable.
#pragma once

#include <cmath>
#include <cstdint>

#include "mapping/crossbar_shape.hpp"
#include "reram/device_params.hpp"

namespace autohet::reram {

// ---- pure arithmetic helpers shared by the analytical models ----
// Kept header-inline so call sites (hardware model, evaluation engine,
// NoC/merge-tree accounting) agree bit-for-bit on the same expression.

/// Adder-tree depth: ceil(log2(n)) merge levels for n inputs; 0 for n <= 1.
inline double ceil_log2(std::int64_t n) noexcept {
  if (n <= 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(n)));
}

/// Picojoule -> nanojoule conversion used by all energy accounting.
inline constexpr double kPjToNj = 1e-3;

/// Successive-approximation ADC.
class AdcModel {
 public:
  explicit AdcModel(int resolution_bits, double feature_nm = 32.0);

  int resolution_bits() const noexcept { return bits_; }
  /// Energy per conversion (pJ): capacitor-array switching ~2^bits.
  double energy_pj() const noexcept;
  /// Layout area (µm²).
  double area_um2() const noexcept;
  /// Conversion latency (ns): one comparator decision per bit.
  double latency_ns() const noexcept;

 private:
  int bits_;
  double feature_nm_;
};

/// Wordline driver DAC.
class DacModel {
 public:
  explicit DacModel(int resolution_bits, double feature_nm = 32.0);

  int resolution_bits() const noexcept { return bits_; }
  double energy_pj() const noexcept;  ///< per driven wordline per cycle
  double area_um2() const noexcept;

 private:
  int bits_;
  double feature_nm_;
};

/// The memristor array itself.
class CrossbarModel {
 public:
  explicit CrossbarModel(mapping::CrossbarShape shape,
                         double feature_nm = 32.0);

  const mapping::CrossbarShape& shape() const noexcept { return shape_; }
  /// Cell footprint (µm²): 4F² memristor.
  double cell_area_um2() const noexcept;
  /// Read energy per active cell per cycle (pJ).
  double cell_read_energy_pj() const noexcept;
  /// Read-cycle latency (ns): charge/settle plus wordline RC growth.
  double read_cycle_ns() const noexcept;
  /// Whole-array area (µm²).
  double array_area_um2() const noexcept;

 private:
  mapping::CrossbarShape shape_;
  double feature_nm_;
};

/// Tile input/output SRAM buffer.
class SramBufferModel {
 public:
  explicit SramBufferModel(std::int64_t capacity_bytes,
                           double feature_nm = 32.0);

  std::int64_t capacity_bytes() const noexcept { return capacity_; }
  double access_energy_pj_per_byte() const noexcept;
  double area_um2() const noexcept;

 private:
  std::int64_t capacity_;
  double feature_nm_;
};

/// Operating point for deriving a DeviceParams from the component models.
struct ComponentConfig {
  int adc_resolution_bits = 10;  ///< paper §4.1
  int dac_bits = 1;
  int cell_bits = 1;
  int weight_bits = 8;
  int input_bits = 8;
  double feature_nm = 32.0;
  std::int64_t tile_buffer_bytes = 8192;
};

/// Assembles a DeviceParams whose per-component constants come from the
/// models above. Latency wire terms use the largest candidate's geometry
/// scaling (per-row coefficient), matching DeviceParams' conventions.
DeviceParams derive_device_params(const ComponentConfig& config);

}  // namespace autohet::reram
