// The behavioral hardware model: energy / area / latency / utilization of a
// DNN mapped onto the (possibly heterogeneous) crossbar fabric.
//
// This is the C++ counterpart of the role MNSIM 2.0 plays in the paper: the
// "direct hardware feedback" (step 6 in Fig. 6) that the RL reward consumes.
//
// Model summary (constants in DeviceParams; derivations in DESIGN.md §4):
//   energy(layer) = MVMs × [ input_cycles × ( ADC + DAC + cell + S&A ) +
//                            buffer traffic ]
//     where per input cycle (unused bitlines/wordlines are gated):
//       ADC conversions = bit_planes × row_blocks × Cout
//       DAC drives      = bit_planes × col_blocks × (Cin·k²)
//       cell reads      = bit_planes × useful cells
//       S&A ops         = ADC conversions
//   area(network)  = Σ_layers [ cells + ADC/DAC/S&A instances ] +
//                    occupied_tiles × tile_overhead
//   latency(layer) = MVMs × [ input_cycles × (base + wire·rows) + ADC drain +
//                    merge·(log2 row_blocks + log2 bit_planes) +
//                    bus·log2 tiles ]
#pragma once

#include <cmath>
#include <vector>

#include "mapping/tile_allocator.hpp"
#include "nn/graph.hpp"
#include "nn/layer.hpp"
#include "reram/device_params.hpp"
#include "reram/faults.hpp"
#include "reram/stats.hpp"

namespace autohet::reram {

/// Configuration of the accelerator fabric used by evaluations.
struct AcceleratorConfig {
  DeviceParams device;
  std::int64_t pes_per_tile = 4;  ///< logical crossbars per tile (paper §4.1)
  bool tile_shared = false;       ///< enable §3.4 allocation
  /// Device non-ideality assumed by evaluations (reram/faults.hpp). The
  /// default is ideal: every report's fault_vulnerability stays 0 and all
  /// figures are bit-identical to a fault-unaware build.
  FaultConfig faults{};

  void validate() const {
    device.validate();
    AUTOHET_CHECK(pes_per_tile > 0, "pes_per_tile must be positive");
    faults.validate();
  }

  /// Exact equality — used by plan consumers to prove a compiled plan and a
  /// live engine/fabric assume the same hardware.
  bool operator==(const AcceleratorConfig&) const = default;
};

/// Area contribution of one occupied tile (µm² per component class).
/// Hardware is provisioned per occupied tile: every tile carries
/// `pes_per_tile` logical crossbars of its shape with full peripheral
/// circuits, whether or not a layer fills them. Shared by
/// `evaluate_network` and the `EvaluationEngine` fast path so both
/// aggregate from the exact same per-tile values.
struct TileAreaContribution {
  double crossbar_um2 = 0.0;
  double adc_um2 = 0.0;
  double dac_um2 = 0.0;
  double shift_add_um2 = 0.0;
  double tile_overhead_um2 = 0.0;
};

inline TileAreaContribution tile_area_contribution(
    const mapping::CrossbarShape& shape, const DeviceParams& device,
    std::int64_t pes_per_tile) noexcept {
  const double planes = device.bit_planes();
  const double pes = static_cast<double>(pes_per_tile);
  const double rows = static_cast<double>(shape.rows);
  const double cols = static_cast<double>(shape.cols);
  // ADC instances per crossbar shrink with column sharing.
  const double adcs_per_xb =
      std::ceil(cols / static_cast<double>(device.adc_share));
  TileAreaContribution a;
  a.crossbar_um2 = pes * planes * rows * cols * device.cell_area_um2;
  a.adc_um2 = pes * adcs_per_xb * device.adc_area_um2;
  a.dac_um2 = pes * rows * device.dac_area_um2;
  a.shift_add_um2 = pes * cols * device.shift_add_area_um2;
  a.tile_overhead_um2 = device.tile_overhead_area_um2;
  return a;
}

/// Per-MVM latency decomposition of the model above. The terms are kept
/// separate so the attribution profiler can classify a layer as
/// compute- / ADC- / NoC-bound; their left-to-right sum in per_mvm_ns()
/// is the exact expression evaluate_layer uses (same association, so the
/// refactor is bit-identical to the historical inline computation).
struct LayerLatencyTerms {
  double compute_ns = 0.0;  ///< input cycles × (base + wire·rows)
  double adc_ns = 0.0;      ///< ADC drain serialized over muxed bitlines
  double merge_ns = 0.0;    ///< adder-tree merge levels
  double bus_ns = 0.0;      ///< inter-tile bus hops

  double per_mvm_ns() const noexcept {
    return compute_ns + adc_ns + merge_ns + bus_ns;
  }
  /// On-chip network share (merge tree + inter-tile bus).
  double noc_ns() const noexcept { return merge_ns + bus_ns; }
};

/// Latency decomposition for one mapped layer (see LayerLatencyTerms).
LayerLatencyTerms layer_latency_terms(const mapping::LayerMapping& m,
                                      std::int64_t tiles_spanned,
                                      const DeviceParams& params) noexcept;

/// Evaluates one layer mapped with the given geometry. `tiles_spanned` is
/// the number of tiles the layer occupies (affects the inter-tile merge
/// latency term). A non-ideal `faults` config fills in the closed-form
/// fault_vulnerability (analytic_layer_vulnerability); the default ideal
/// config leaves it 0 and every other figure untouched.
LayerReport evaluate_layer(const nn::LayerSpec& layer,
                           const mapping::LayerMapping& m,
                           std::int64_t tiles_spanned,
                           const DeviceParams& params,
                           const FaultConfig& faults = {});

/// Aggregates a full NetworkReport over an already-computed allocation:
/// per-layer evaluate_layer reports, area over non-released tiles in tile-id
/// order, and the system utilization. The shared arithmetic core of both
/// `evaluate_network` (which allocates first) and `plan::evaluate_plan`
/// (which replays a frozen allocation) — keeping the two bit-identical.
NetworkReport evaluate_allocation(const std::vector<nn::LayerSpec>& layers,
                                  const mapping::AllocationResult& alloc,
                                  const AcceleratorConfig& config);

/// NEON-style accounting of one non-mappable graph op (residual add,
/// concat, activation, global average pool) on the tile vector unit:
///   ALU ops    — one per output element (adds/ReLUs) or per input element
///                (global-avg-pool accumulation); concat moves data only;
///   traffic    — one byte per 8-bit operand read plus result written,
///                charged at the tile-buffer energy;
///   latency    — ceil(max(ALU ops, operand reads) / vector_lanes) vector
///                cycles.
/// Energy lands in the shift_add (ALU) and buffer components so RUE and
/// the energy total see it without new breakdown classes. `node_id` must
/// name a non-mappable op node (not kInput / kLayer).
GraphOpReport evaluate_graph_op(const nn::Graph& graph, std::int64_t node_id,
                                const DeviceParams& params);

/// Evaluates a DAG network over a frozen allocation of its mappable
/// layers: evaluate_allocation over graph.mappable_layers(), plus one
/// GraphOpReport per non-mappable op folded into the energy/latency
/// totals. Chain graphs have no such ops, so their result is bit-identical
/// to evaluate_allocation on the linearized chain.
NetworkReport evaluate_graph_allocation(const nn::Graph& graph,
                                        const mapping::AllocationResult& alloc,
                                        const AcceleratorConfig& config);

/// Evaluates a whole network: maps each mappable layer with its assigned
/// shape, runs the tile allocator (tile-based or tile-shared per `config`),
/// and aggregates energy/area/latency plus the system-level utilization.
/// `layers` and `shapes` must have equal length and contain only mappable
/// layers (use NetworkSpec::mappable_layers()).
NetworkReport evaluate_network(const std::vector<nn::LayerSpec>& layers,
                               const std::vector<mapping::CrossbarShape>& shapes,
                               const AcceleratorConfig& config);

/// Convenience: homogeneous evaluation — every layer uses `shape`.
NetworkReport evaluate_homogeneous(const std::vector<nn::LayerSpec>& layers,
                                   const mapping::CrossbarShape& shape,
                                   const AcceleratorConfig& config);

}  // namespace autohet::reram
