#include "reram/eval_engine.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "mapping/layer_mapping.hpp"
#include "obs/obs.hpp"

namespace autohet::reram {

namespace {
/// Engine-wide metric names (one registry series across engines; the
/// per-engine split stays available via cache_stats()).
[[maybe_unused]] constexpr const char* kHits =
    "autohet_eval_cache_hits_total";
[[maybe_unused]] constexpr const char* kMisses =
    "autohet_eval_cache_misses_total";
[[maybe_unused]] constexpr const char* kEvictions =
    "autohet_eval_cache_evictions_total";
}  // namespace

EvaluationEngine::EvaluationEngine(
    std::vector<nn::LayerSpec> layers,
    std::vector<mapping::CrossbarShape> candidates, AcceleratorConfig accel,
    EvalEngineConfig config)
    : layers_(std::move(layers)),
      candidates_(std::move(candidates)),
      accel_(accel),
      config_(config) {
  accel_.validate();
  AUTOHET_CHECK(!candidates_.empty(),
                "evaluation engine needs at least one candidate");
  for (const auto& layer : layers_) {
    AUTOHET_CHECK(nn::is_mappable(layer.type),
                  "evaluation engine layers must be CONV/FC");
  }

  const std::int64_t xpt = accel_.pes_per_tile;
  cand_info_.reserve(candidates_.size());
  for (const auto& shape : candidates_) {
    CandidateInfo info;
    info.shape = shape;
    info.tile_area = tile_area_contribution(shape, accel_.device, xpt);
    info.cells_per_tile = xpt * shape.cells();
    cand_info_.push_back(info);
  }

  // The L×C table: per-layer reports are action-independent because the
  // allocator assigns each layer ceil(needed / pes_per_tile) exclusive
  // tiles regardless of what the other layers chose (tile sharing later
  // releases tiles but LayerReport::tiles is defined pre-sharing).
  table_.reserve(layers_.size() * candidates_.size());
  for (const auto& layer : layers_) {
    for (const auto& shape : candidates_) {
      LayerCandidate lc;
      const mapping::LayerMapping m = mapping::map_layer(layer, shape);
      const std::int64_t needed = m.logical_crossbars();
      lc.tiles = (needed + xpt - 1) / xpt;
      lc.last_tile_empty = lc.tiles * xpt - needed;
      lc.useful_cells = m.useful_cells;
      lc.report =
          evaluate_layer(layer, m, lc.tiles, accel_.device, accel_.faults);
      table_.push_back(std::move(lc));
    }
  }
}

const LayerReport& EvaluationEngine::layer_report(std::size_t layer,
                                                  std::size_t candidate) const {
  AUTOHET_CHECK(layer < layers_.size(), "layer index out of range");
  AUTOHET_CHECK(candidate < candidates_.size(),
                "candidate index out of range");
  return cell(layer, candidate).report;
}

NetworkReport EvaluationEngine::compute(
    const std::vector<std::size_t>& actions) const {
  OBS_SPAN("eval_compute");
  const std::size_t n = layers_.size();
  const std::int64_t xpt = accel_.pes_per_tile;

  NetworkReport report;
  report.layers.reserve(n);
  std::vector<double> layer_vuln;
  layer_vuln.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    const LayerCandidate& e = cell(l, actions[l]);
    report.energy += e.report.energy;
    report.latency_ns += e.report.latency_ns;
    layer_vuln.push_back(e.report.fault_vulnerability);
    report.layers.push_back(e.report);
  }
  // Same aggregation, same layer order as evaluate_network.
  report.fault_vulnerability = aggregate_network_vulnerability(layer_vuln);

  // ---- tile accounting on the compact per-layer summary ----
  // Only a layer's last tile can hold empty PEs, so Algorithm 1's
  // two-pointer drain (which requires head.empty + tail.empty >= PEs/tile,
  // impossible when either side is full) operates on at most one tile per
  // layer. Tile ids are assigned consecutively per layer, exactly as the
  // allocator numbers them.
  struct Partial {
    std::int64_t id;
    std::int64_t empty;
    std::size_t layer;
    bool released = false;
  };
  std::int64_t total_tiles = 0;
  std::vector<Partial> partials;
  partials.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    const LayerCandidate& e = cell(l, actions[l]);
    if (e.last_tile_empty > 0) {
      partials.push_back({total_tiles + e.tiles - 1, e.last_tile_empty, l,
                          false});
    }
    total_tiles += e.tiles;
  }

  std::vector<bool> last_tile_released(n, false);
  std::int64_t released_tiles = 0;
  std::int64_t empty_xbs = 0;
  if (accel_.tile_shared && !partials.empty()) {
    OBS_SPAN("tile_shared_remap");
    OBS_COUNTER_ADD("autohet_tile_remap_passes_total", 1);
    // Group by crossbar shape (layers may only share same-size tiles, §3.4)
    // and run the two-pointer pass per group, mirroring tile_shared_remap's
    // (empty asc, id asc) order.
    std::map<std::pair<std::int64_t, std::int64_t>, std::vector<Partial*>>
        groups;
    for (auto& p : partials) {
      const auto& shape = cand_info_[actions[p.layer]].shape;
      groups[{shape.rows, shape.cols}].push_back(&p);
    }
    for (auto& [shape_key, group] : groups) {
      std::sort(group.begin(), group.end(),
                [](const Partial* a, const Partial* b) {
                  if (a->empty != b->empty) return a->empty < b->empty;
                  return a->id < b->id;
                });
      std::size_t head = 0;
      std::size_t tail = group.size() - 1;
      while (head < tail) {
        Partial* h = group[head];
        Partial* t = group[tail];
        if (h->empty + t->empty >= xpt) {
          h->empty = h->empty + t->empty - xpt;
          t->empty = 0;
          t->released = true;
          --tail;
        } else {
          ++head;
        }
      }
    }
  }
  for (const auto& p : partials) {
    if (p.released) {
      last_tile_released[p.layer] = true;
      ++released_tiles;
    } else {
      empty_xbs += p.empty;
    }
  }
  OBS_COUNTER_ADD("autohet_tiles_released_total",
                  static_cast<std::uint64_t>(released_tiles));

  // ---- area: same per-tile contributions, same tile-id order ----
  std::int64_t useful_cells = 0;
  std::int64_t allocated_cells = 0;
  for (std::size_t l = 0; l < n; ++l) {
    const LayerCandidate& e = cell(l, actions[l]);
    const CandidateInfo& info = cand_info_[actions[l]];
    const std::int64_t survivors =
        e.tiles - (last_tile_released[l] ? 1 : 0);
    useful_cells += e.useful_cells;
    allocated_cells += survivors * info.cells_per_tile;
    for (std::int64_t t = 0; t < survivors; ++t) {
      report.area.crossbar_um2 += info.tile_area.crossbar_um2;
      report.area.adc_um2 += info.tile_area.adc_um2;
      report.area.dac_um2 += info.tile_area.dac_um2;
      report.area.shift_add_um2 += info.tile_area.shift_add_um2;
      report.area.tile_overhead_um2 += info.tile_area.tile_overhead_um2;
    }
  }
  report.occupied_tiles = total_tiles - released_tiles;
  report.empty_crossbars = empty_xbs;
  report.utilization =
      allocated_cells > 0 ? static_cast<double>(useful_cells) /
                                static_cast<double>(allocated_cells)
                          : 0.0;
  return report;
}

const NetworkReport* EvaluationEngine::lookup_locked(
    const std::vector<std::size_t>& actions) const {
  const auto it = memo_.find(actions);
  if (it == memo_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return &it->second->report;
}

void EvaluationEngine::insert_locked(const std::vector<std::size_t>& actions,
                                     const NetworkReport& report) const {
  if (config_.memo_capacity == 0) return;
  if (memo_.find(actions) != memo_.end()) return;  // raced insert: keep first
  lru_.push_front(MemoEntry{actions, report});
  memo_.emplace(actions, lru_.begin());
  while (memo_.size() > config_.memo_capacity) {
    memo_.erase(lru_.back().actions);
    lru_.pop_back();
    ++stats_.evictions;
    OBS_COUNTER_ADD(kEvictions, 1);
  }
}

NetworkReport EvaluationEngine::evaluate(
    const std::vector<std::size_t>& actions) const {
  AUTOHET_CHECK(actions.size() == layers_.size(),
                "one action per layer required");
  for (std::size_t a : actions) {
    AUTOHET_CHECK(a < candidates_.size(), "action index out of range");
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const NetworkReport* hit = lookup_locked(actions)) {
      ++stats_.hits;
      OBS_COUNTER_ADD(kHits, 1);
      OBS_TRACE_COUNTER("eval_cache_hit_rate", stats_.hit_rate());
      return *hit;
    }
    ++stats_.misses;
    OBS_COUNTER_ADD(kMisses, 1);
    OBS_TRACE_COUNTER("eval_cache_hit_rate", stats_.hit_rate());
  }
  NetworkReport report = compute(actions);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    insert_locked(actions, report);
  }
  return report;
}

NetworkReport EvaluationEngine::evaluate(
    const plan::DeploymentPlan& plan) const {
  OBS_PROFILE_RECORD(obs::ProfileKind::kPlanEval, -1, 0, 1);
  plan.validate();
  AUTOHET_CHECK(plan.accel == accel_,
                "plan was compiled for a different accelerator config");
  AUTOHET_CHECK(plan.layers == layers_,
                "plan layers do not match the engine's layers");
  // Map the plan's shapes back to candidate indices; the frozen allocation
  // is then exactly what compute() re-derives, so the memoized
  // action-vector path serves the plan bit-identically.
  std::vector<std::size_t> actions;
  actions.reserve(plan.layers.size());
  for (const auto& shape : plan.shapes()) {
    std::size_t index = candidates_.size();
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      if (candidates_[c] == shape) {
        index = c;
        break;
      }
    }
    AUTOHET_CHECK(index < candidates_.size(),
                  "plan shape " + shape.name() +
                      " is not in the engine's candidate set");
    actions.push_back(index);
  }
  return evaluate(actions);
}

std::vector<NetworkReport> EvaluationEngine::evaluate_batch(
    const std::vector<std::vector<std::size_t>>& batch) const {
  OBS_SPAN("evaluate_batch");
  OBS_SCOPED_LATENCY("autohet_eval_batch_latency_ns");
  OBS_HIST_RECORD("autohet_eval_batch_size", batch.size());
  std::vector<NetworkReport> results(batch.size());
  for (const auto& actions : batch) {
    AUTOHET_CHECK(actions.size() == layers_.size(),
                  "one action per layer required");
    for (std::size_t a : actions) {
      AUTOHET_CHECK(a < candidates_.size(), "action index out of range");
    }
  }

  // Phase 1 (locked): satisfy hits, dedup misses in first-seen order.
  std::unordered_map<std::vector<std::size_t>, std::size_t, KeyHash> slots;
  std::vector<std::size_t> first_position;  // unique miss -> position
  std::vector<std::vector<std::size_t>> positions;  // unique miss -> all
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t batch_hits = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (const NetworkReport* hit = lookup_locked(batch[i])) {
        ++stats_.hits;
        ++batch_hits;
        results[i] = *hit;
        continue;
      }
      const auto [it, inserted] =
          slots.emplace(batch[i], first_position.size());
      if (inserted) {
        ++stats_.misses;  // misses == number of compute() calls
        first_position.push_back(i);
        positions.emplace_back();
      } else {
        ++stats_.hits;  // duplicate within the batch: served by the dedup
        ++batch_hits;
      }
      positions[it->second].push_back(i);
    }
    OBS_COUNTER_ADD(kHits, batch_hits);
    OBS_COUNTER_ADD(kMisses, first_position.size());
    OBS_TRACE_COUNTER("eval_cache_hit_rate", stats_.hit_rate());
    (void)batch_hits;
    if (!first_position.empty() && config_.threads > 0 && !pool_) {
      pool_ = std::make_unique<common::ThreadPool>(config_.threads);
    }
  }

  // Phase 2 (lock-free): compute unique misses, in parallel when a pool is
  // configured. compute() is pure, so results do not depend on scheduling.
  std::vector<NetworkReport> computed(first_position.size());
  if (pool_ && config_.threads > 0 && first_position.size() > 1) {
    pool_->parallel_for(0, first_position.size(), [&](std::size_t u) {
      computed[u] = compute(batch[first_position[u]]);
    });
  } else {
    for (std::size_t u = 0; u < first_position.size(); ++u) {
      computed[u] = compute(batch[first_position[u]]);
    }
  }

  // Phase 3 (locked): memoize in first-seen order and scatter to positions.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t u = 0; u < computed.size(); ++u) {
      insert_locked(batch[first_position[u]], computed[u]);
    }
  }
  for (std::size_t u = 0; u < computed.size(); ++u) {
    for (std::size_t pos : positions[u]) results[pos] = computed[u];
  }
  return results;
}

RobustnessReport EvaluationEngine::evaluate_robustness(
    const nn::Model& model, const std::vector<std::size_t>& actions,
    const FaultConfig& faults, const RobustnessOptions& options) const {
  AUTOHET_CHECK(actions.size() == layers_.size(),
                "one action per layer required");
  AUTOHET_CHECK(model.spec().mappable_layers().size() == layers_.size(),
                "model mappable layers must match engine layers");
  std::vector<mapping::CrossbarShape> shapes;
  shapes.reserve(actions.size());
  for (std::size_t a : actions) {
    AUTOHET_CHECK(a < candidates_.size(), "action index out of range");
    shapes.push_back(candidates_[a]);
  }
  // Callers that leave the trial parallelism at its serial default inherit
  // the engine's configured worker count (reports are byte-identical at
  // any thread count, so this is purely a wall-time knob).
  RobustnessOptions effective = options;
  if (effective.threads == 1 && config_.threads > 1) {
    effective.threads = static_cast<int>(config_.threads);
  }
  // Hand the engine's shared pool to the MC fan-out so repeated robustness
  // calls (fault sweeps) don't spawn a fresh set of workers per call.
  if (effective.pool == nullptr && effective.threads > 1 &&
      config_.threads > 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!pool_) pool_ = std::make_unique<common::ThreadPool>(config_.threads);
    effective.pool = pool_.get();
  }
  // Sweeps that revisit one configuration across fault grids reuse the
  // engine's trial-fabric cache (byte-identical reports, see
  // TrialFabricCache); callers can still pass their own cache.
  if (effective.cache == nullptr) effective.cache = &mc_cache_;
  return monte_carlo_robustness(model, shapes, faults, effective);
}

std::size_t EvaluationEngine::RobustnessKeyHash::operator()(
    const RobustnessKey& k) const noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  const auto mix_d = [&mix](double d) {
    mix(std::bit_cast<std::uint64_t>(d));
  };
  mix(reinterpret_cast<std::uintptr_t>(k.model));
  for (std::size_t a : k.actions) mix(a);
  mix_d(k.faults.stuck_at_zero_rate);
  mix_d(k.faults.stuck_at_one_rate);
  mix_d(k.faults.program_sigma);
  mix_d(k.faults.read_sigma);
  mix_d(k.faults.drift_time_s);
  mix_d(k.faults.drift_nu);
  mix(static_cast<std::uint64_t>(k.faults.cell_bits));
  mix(k.faults.seed);
  mix(static_cast<std::uint64_t>(k.trials));
  mix(static_cast<std::uint64_t>(k.samples));
  mix(k.input_seed);
  mix(static_cast<std::uint64_t>(k.mode));
  mix(static_cast<std::uint64_t>(k.kernels));
  mix(static_cast<std::uint64_t>(k.budget.mode));
  mix_d(k.budget.ci_halfwidth);
  mix(static_cast<std::uint64_t>(k.budget.min_trials));
  mix(static_cast<std::uint64_t>(k.budget.max_trials));
  mix(static_cast<std::uint64_t>(k.budget.chunk_trials));
  mix(k.budget.span_zero_rate ? 1u : 0u);
  return static_cast<std::size_t>(h);
}

RobustnessReport EvaluationEngine::evaluate_robustness_cached(
    const nn::Model& model, const std::vector<std::size_t>& actions,
    const FaultConfig& faults, const RobustnessOptions& options) const {
  RobustnessKey key{&model,          actions,        faults,
                    options.trials,  options.samples, options.input_seed,
                    options.mode,    options.kernels, options.budget};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = rob_memo_.find(key);
    if (it != rob_memo_.end()) {
      rob_lru_.splice(rob_lru_.begin(), rob_lru_, it->second);
      ++rob_stats_.hits;
      OBS_COUNTER_ADD("autohet_mc_memo_hits_total", 1);
      return it->second->second;
    }
    ++rob_stats_.misses;
    OBS_COUNTER_ADD("autohet_mc_memo_misses_total", 1);
  }
  // First visit: evaluate with the cross-allocation layer cache wired in —
  // consecutive search episodes differ in allocation but share per-layer
  // (layer, candidate) choices and the trial seed stream, so fabric
  // construction collapses to copies of prebuilt burned layers. Reports
  // are bit-identical with or without the cache.
  RobustnessOptions opts = options;
  if (opts.layer_cache == nullptr) opts.layer_cache = &layer_cache_;
  const RobustnessReport report =
      evaluate_robustness(model, actions, faults, opts);
  if (config_.robustness_memo_capacity == 0) return report;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (rob_memo_.find(key) == rob_memo_.end()) {
    rob_lru_.emplace_front(key, report);
    rob_memo_.emplace(std::move(key), rob_lru_.begin());
    while (rob_memo_.size() > config_.robustness_memo_capacity) {
      rob_memo_.erase(rob_lru_.back().first);
      rob_lru_.pop_back();
      ++rob_stats_.evictions;
    }
  }
  return report;
}

EvaluationEngine::CacheStats EvaluationEngine::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

EvaluationEngine::CacheStats EvaluationEngine::robustness_cache_stats()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rob_stats_;
}

void EvaluationEngine::clear_cache() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  memo_.clear();
  lru_.clear();
  stats_ = CacheStats{};
  rob_memo_.clear();
  rob_lru_.clear();
  rob_stats_ = CacheStats{};
  layer_cache_.clear();
}

}  // namespace autohet::reram
