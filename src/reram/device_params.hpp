// Device- and circuit-level parameters of the behavioral ReRAM model.
//
// Values are MNSIM/ISAAC-class per-component constants (32 nm, 10-bit SAR
// ADC, 1-bit DAC, 1-bit cells). The reproduction does not aim to match the
// paper's absolute joules/µm² — the paper's own numbers come from MNSIM's
// internal tables — but the *ratios* between configurations are governed by
// component counts (ADCs dominate energy and area), which this model
// computes exactly. See DESIGN.md §4 and EXPERIMENTS.md.
//
// Conventions used throughout the reram module:
//   * a *logical crossbar* = one PE = `bit_planes()` physical 1-bit crossbars
//     holding the bit planes of 8-bit weights (paper §4.1);
//   * ADCs/DACs are instantiated per logical crossbar (one ADC per bitline,
//     one DAC per wordline — Fig. 5 counts ADCs this way) and time-shared by
//     the bit planes, so *energy* counts one conversion per plane per input
//     cycle while *area* counts one instance per bitline.
#pragma once

#include "common/error.hpp"

namespace autohet::reram {

struct DeviceParams {
  // ---- precision (paper §4.1) ----
  int weight_bits = 8;        ///< DNN weights quantized to 8 bits
  int input_bits = 8;         ///< activation precision fed to DACs
  int cell_bits = 1;          ///< memristor cell precision
  int dac_bits = 1;           ///< DAC precision
  int adc_resolution_bits = 10;  ///< supports all heterogeneous sizes
  /// Bitlines multiplexed into one ADC instance (MNSIM's column-sharing
  /// knob). 1 = one ADC per bitline (the paper's Fig. 5 accounting).
  /// Sharing divides ADC instances (area) by this factor and serializes
  /// conversions, stretching the conversion phase of each read cycle.
  int adc_share = 1;

  // ---- energy per operation (picojoules) ----
  double adc_energy_pj = 3.1;          ///< per 10-bit conversion
  double dac_energy_pj = 0.002;        ///< per driven wordline per cycle
  double cell_read_energy_pj = 0.0002; ///< per active cell per cycle
  double shift_add_energy_pj = 0.05;   ///< per partial-sum merge op
  double buffer_rw_energy_pj = 0.02;   ///< per byte through tile buffers

  // ---- area (square micrometres) ----
  double adc_area_um2 = 1500.0;
  double dac_area_um2 = 0.17;
  double cell_area_um2 = 0.0025;
  double shift_add_area_um2 = 60.0;
  double tile_overhead_area_um2 = 15000.0;  ///< buffers, control, pooling

  // ---- latency (nanoseconds) ----
  double base_cycle_ns = 100.0;       ///< crossbar read (charge + settle)
  double wire_delay_ns_per_row = 0.05;///< RC growth with wordline count
  double adc_latency_ns = 10.0;       ///< pipelined conversion drain
  double merge_latency_ns = 5.0;      ///< per adder-tree level
  double bus_latency_ns = 10.0;       ///< per inter-tile merge level

  // ---- vector functional unit (NEON-style graph-op accounting) ----
  // Non-mappable graph ops (residual add, concat, standalone activation,
  // global average pool) execute on a digital SIMD vector unit beside the
  // crossbars, the way NEON accounts nonlinear ops on a ReRAM fabric,
  // instead of being assumed free. Chain-shaped networks contain no such
  // ops, so these knobs never influence a legacy linear-chain report.
  int vector_lanes = 32;              ///< elementwise ops per vector cycle
  double vector_op_energy_pj = 0.08;  ///< per elementwise ALU op
  double vector_cycle_ns = 1.0;       ///< vector-unit cycle time

  /// Physical 1-bit crossbars per logical crossbar (8 by default).
  int bit_planes() const noexcept { return weight_bits / cell_bits; }
  /// Bit-serial input cycles per MVM (8 by default).
  int input_cycles() const noexcept { return input_bits / dac_bits; }

  void validate() const {
    AUTOHET_CHECK(weight_bits > 0 && cell_bits > 0 &&
                      weight_bits % cell_bits == 0,
                  "weight_bits must be a positive multiple of cell_bits");
    AUTOHET_CHECK(input_bits > 0 && dac_bits > 0 &&
                      input_bits % dac_bits == 0,
                  "input_bits must be a positive multiple of dac_bits");
    AUTOHET_CHECK(adc_resolution_bits > 0, "ADC resolution must be positive");
    AUTOHET_CHECK(adc_share >= 1, "adc_share must be >= 1");
    AUTOHET_CHECK(vector_lanes >= 1 && vector_op_energy_pj >= 0.0 &&
                      vector_cycle_ns >= 0.0,
                  "invalid vector functional unit parameters");
  }

  bool operator==(const DeviceParams&) const = default;
};

}  // namespace autohet::reram
