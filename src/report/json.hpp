#pragma once

/// Minimal deterministic JSON support shared by every layer that persists
/// artifacts (DeploymentPlan save/replay, traffic traces, serving reports).
/// The repo deliberately has no external JSON dependency: the writer side is
/// hand-formatted per document (fixed key order, round-trip doubles via
/// format_double_json, 64-bit ids as decimal strings) and this header is the
/// reader side — a recursive-descent parser plus typed accessors that raise
/// AUTOHET_CHECK errors naming the offending key.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace autohet::report {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  /// 1-based line of the value's first token in the parsed document; kept
  /// so semantic errors (wrong type, bad version, missing key) can point
  /// back into the file the way parse errors do.
  int line = 1;
  bool boolean = false;
  std::string scalar;  ///< raw number token, or decoded string
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// Object member lookup; raises on a missing key.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;
};

/// Parses `text` as a single JSON document (trailing content is an error).
JsonValue parse_json(std::string_view text);

/// Typed accessors. `key` is only used in error messages so callers get
/// "JSON key 'seed' must be a decimal string" instead of a bare type error.
double as_double(const JsonValue& v, const std::string& key);
std::int64_t as_int(const JsonValue& v, const std::string& key);
std::uint64_t as_u64_string(const JsonValue& v, const std::string& key);
bool as_bool(const JsonValue& v, const std::string& key);
std::string as_string(const JsonValue& v, const std::string& key);
const std::vector<JsonValue>& as_array(const JsonValue& v,
                                       const std::string& key);

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace autohet::report
