#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace autohet::report {

std::string format_sci(double value, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << value;
  return oss.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AUTOHET_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AUTOHET_CHECK(cells.size() == headers_.size(),
                "row width must match header count");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace autohet::report
