#include "report/profile_report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "report/serialize.hpp"
#include "report/table.hpp"

namespace autohet::report {

namespace {

/// Minimal JSON string escape — names here are network/shape identifiers,
/// but a plan file is external input, so quotes/backslashes must not break
/// the emitted document.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* classify_bottleneck(const reram::LayerLatencyTerms& t) {
  // Roofline-style classification of the per-MVM latency: the dominant
  // term wins; ties resolve compute > adc > noc so the label is stable.
  const double noc = t.noc_ns();
  if (t.compute_ns >= t.adc_ns && t.compute_ns >= noc) return "compute";
  if (t.adc_ns >= noc) return "adc";
  return "noc";
}

void write_energy_fields(std::ostream& os, const reram::EnergyBreakdown& e) {
  os << "{\"adc\": " << format_double_json(e.adc_nj)
     << ", \"dac\": " << format_double_json(e.dac_nj)
     << ", \"cell\": " << format_double_json(e.cell_nj)
     << ", \"shift_add\": " << format_double_json(e.shift_add_nj)
     << ", \"buffer\": " << format_double_json(e.buffer_nj)
     << ", \"total\": " << format_double_json(e.total_nj()) << "}";
}

}  // namespace

PlanProfile build_plan_profile(const plan::DeploymentPlan& plan,
                               const reram::NetworkReport& report,
                               const reram::ScheduleReport& schedule,
                               const obs::ProfileSnapshot& recorded,
                               std::int64_t batch) {
  const std::size_t n = plan.layers.size();
  AUTOHET_CHECK(report.layers.size() == n,
                "report does not match the plan's layer count");
  PlanProfile profile;
  profile.network = plan.network;
  profile.batch = batch;
  profile.totals = report;
  profile.makespan_ns = schedule.makespan_ns;
  profile.steady_throughput = schedule.steady_throughput_inferences_per_s;
  profile.plan_evals = recorded.total(obs::ProfileKind::kPlanEval);
  profile.analytic_layer_evals =
      recorded.total(obs::ProfileKind::kAnalyticEval);
  profile.mc_trials = recorded.total(obs::ProfileKind::kMcTrial);
  profile.mvms_executed = recorded.total(obs::ProfileKind::kFunctionalMvm);
  profile.program_writes = recorded.total(obs::ProfileKind::kProgramWrite);

  // Busy time per stage from the schedule's task grid.
  std::vector<double> busy(n, 0.0);
  for (const reram::TaskTiming& t : schedule.tasks) {
    if (t.layer >= 0 && static_cast<std::size_t>(t.layer) < n) {
      busy[static_cast<std::size_t>(t.layer)] += t.finish_ns - t.start_ns;
    }
  }

  const double total_energy = report.energy.total_nj();
  profile.layers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const reram::LayerReport& lr = report.layers[i];
    const mapping::LayerAllocation& alloc = plan.allocation.layers[i];
    LayerProfile lp;
    lp.layer = static_cast<std::int64_t>(i);
    lp.shape = lr.shape.name();
    lp.tiles = lr.tiles;
    lp.crossbars = lr.logical_crossbars;
    lp.utilization = lr.utilization;
    lp.mvms_analytic = lr.mvm_invocations;
    lp.mvms_executed = recorded.layer_total(
        obs::ProfileKind::kFunctionalMvm, static_cast<std::int64_t>(i));
    lp.program_writes = recorded.layer_total(
        obs::ProfileKind::kProgramWrite, static_cast<std::int64_t>(i));
    for (const obs::ProfileRecord& r : recorded.records) {
      if (r.kind == obs::ProfileKind::kProgramWrite &&
          r.layer == static_cast<std::int64_t>(i)) {
        lp.crossbar_activity.push_back(CrossbarActivity{r.unit, r.value});
      }
    }
    lp.energy = lr.energy;
    lp.energy_share =
        total_energy > 0.0 ? lr.energy.total_nj() / total_energy : 0.0;
    lp.latency_ns = lr.latency_ns;
    lp.latency_terms = reram::layer_latency_terms(
        alloc.mapping, alloc.tiles_allocated, plan.accel.device);
    lp.bottleneck = classify_bottleneck(lp.latency_terms);
    lp.busy_ns = busy[i];
    lp.busy_fraction =
        schedule.makespan_ns > 0.0 ? busy[i] / schedule.makespan_ns : 0.0;
    profile.layers.push_back(std::move(lp));
  }

  // Tile attribution: walk the frozen tile table in order, handing each
  // occupant layer its next run of layer-local crossbar indices. This
  // follows the allocator's sequential placement (and tile-sharing moves
  // whole runs), so per-tile write attribution matches the per-layer
  // crossbar_activity indices.
  std::vector<std::int64_t> next_xb(n, 0);
  profile.tiles.reserve(plan.allocation.tiles.size());
  for (const mapping::Tile& tile : plan.allocation.tiles) {
    TileProfile tp;
    tp.tile = tile.id;
    tp.shape = tile.shape.name();
    tp.empty_crossbars = tile.empty_xbs;
    tp.released = tile.released;
    for (std::size_t j = 0; j < tile.layer_ids.size(); ++j) {
      TileOccupant occ;
      occ.layer = tile.layer_ids[j];
      occ.crossbars =
          j < tile.layer_xbs.size() ? tile.layer_xbs[j] : 0;
      if (occ.layer >= 0 && static_cast<std::size_t>(occ.layer) < n) {
        const auto li = static_cast<std::size_t>(occ.layer);
        const reram::LayerReport& lr = report.layers[li];
        if (lr.logical_crossbars > 0) {
          occ.energy_nj = lr.energy.total_nj() *
                          (static_cast<double>(occ.crossbars) /
                           static_cast<double>(lr.logical_crossbars));
        }
        const std::int64_t first = next_xb[li];
        for (std::int64_t xb = first; xb < first + occ.crossbars; ++xb) {
          occ.program_writes += recorded.value(
              obs::ProfileKind::kProgramWrite, occ.layer, xb);
        }
        next_xb[li] = first + occ.crossbars;
        tp.busy_ns = std::max(tp.busy_ns, profile.layers[li].busy_ns);
      }
      tp.energy_nj += occ.energy_nj;
      tp.occupants.push_back(std::move(occ));
    }
    profile.tiles.push_back(std::move(tp));
  }

  // Occupancy timeline: +1 at each task start, -1 at each finish; at equal
  // timestamps finishes apply before starts so back-to-back stages never
  // double-count. Coalesce simultaneous events into one point.
  std::vector<std::pair<double, int>> events;
  events.reserve(schedule.tasks.size() * 2);
  for (const reram::TaskTiming& t : schedule.tasks) {
    events.emplace_back(t.start_ns, +1);
    events.emplace_back(t.finish_ns, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  std::int64_t active = 0;
  for (std::size_t e = 0; e < events.size();) {
    const double t = events[e].first;
    while (e < events.size() && events[e].first == t) {
      active += events[e].second;
      ++e;
    }
    profile.timeline.push_back(TimelinePoint{t, active});
  }
  return profile;
}

void write_profile_json(std::ostream& os, const PlanProfile& profile) {
  os << "{\n";
  os << "  \"format\": \"autohet-profile\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"network\": \"" << escape_json(profile.network) << "\",\n";
  os << "  \"batch\": " << profile.batch << ",\n";

  const reram::NetworkReport& r = profile.totals;
  os << "  \"totals\": {\n";
  os << "    \"energy_nj\": ";
  write_energy_fields(os, r.energy);
  os << ",\n";
  os << "    \"latency_ns\": " << format_double_json(r.latency_ns) << ",\n";
  os << "    \"utilization\": " << format_double_json(r.utilization)
     << ",\n";
  os << "    \"occupied_tiles\": " << r.occupied_tiles << ",\n";
  os << "    \"empty_crossbars\": " << r.empty_crossbars << ",\n";
  os << "    \"fault_vulnerability\": "
     << format_double_json(r.fault_vulnerability) << ",\n";
  os << "    \"rue\": " << format_double_json(r.rue()) << "\n";
  os << "  },\n";

  os << "  \"schedule\": {\"makespan_ns\": "
     << format_double_json(profile.makespan_ns)
     << ", \"steady_throughput_inferences_per_s\": "
     << format_double_json(profile.steady_throughput) << "},\n";

  os << "  \"counters\": {\"plan_evals\": " << profile.plan_evals
     << ", \"analytic_layer_evals\": " << profile.analytic_layer_evals
     << ", \"mc_trials\": " << profile.mc_trials
     << ", \"functional_mvms\": " << profile.mvms_executed
     << ", \"program_writes\": " << profile.program_writes << "},\n";

  os << "  \"layers\": [\n";
  for (std::size_t i = 0; i < profile.layers.size(); ++i) {
    const LayerProfile& l = profile.layers[i];
    os << "    {\"layer\": " << l.layer << ", \"shape\": \""
       << escape_json(l.shape) << "\", \"tiles\": " << l.tiles
       << ", \"crossbars\": " << l.crossbars
       << ", \"utilization\": " << format_double_json(l.utilization)
       << ",\n     \"mvms_analytic\": " << l.mvms_analytic
       << ", \"mvms_executed\": " << l.mvms_executed
       << ", \"program_writes\": " << l.program_writes
       << ",\n     \"energy_nj\": ";
    write_energy_fields(os, l.energy);
    os << ", \"energy_share\": " << format_double_json(l.energy_share)
       << ",\n     \"latency_ns\": " << format_double_json(l.latency_ns)
       << ", \"latency_terms_ns\": {\"compute\": "
       << format_double_json(l.latency_terms.compute_ns)
       << ", \"adc\": " << format_double_json(l.latency_terms.adc_ns)
       << ", \"merge\": " << format_double_json(l.latency_terms.merge_ns)
       << ", \"bus\": " << format_double_json(l.latency_terms.bus_ns)
       << "}, \"bottleneck\": \"" << l.bottleneck
       << "\",\n     \"busy_ns\": " << format_double_json(l.busy_ns)
       << ", \"busy_fraction\": " << format_double_json(l.busy_fraction)
       << ",\n     \"crossbar_program_writes\": [";
    for (std::size_t k = 0; k < l.crossbar_activity.size(); ++k) {
      if (k != 0) os << ", ";
      os << "[" << l.crossbar_activity[k].crossbar << ", "
         << l.crossbar_activity[k].program_writes << "]";
    }
    os << "]}";
    os << (i + 1 < profile.layers.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  os << "  \"tiles\": [\n";
  for (std::size_t i = 0; i < profile.tiles.size(); ++i) {
    const TileProfile& t = profile.tiles[i];
    os << "    {\"tile\": " << t.tile << ", \"shape\": \""
       << escape_json(t.shape)
       << "\", \"empty_crossbars\": " << t.empty_crossbars
       << ", \"released\": " << (t.released ? "true" : "false")
       << ", \"energy_nj\": " << format_double_json(t.energy_nj)
       << ", \"busy_ns\": " << format_double_json(t.busy_ns)
       << ", \"occupants\": [";
    for (std::size_t j = 0; j < t.occupants.size(); ++j) {
      const TileOccupant& o = t.occupants[j];
      if (j != 0) os << ", ";
      os << "{\"layer\": " << o.layer << ", \"crossbars\": " << o.crossbars
         << ", \"energy_nj\": " << format_double_json(o.energy_nj)
         << ", \"program_writes\": " << o.program_writes << "}";
    }
    os << "]}";
    os << (i + 1 < profile.tiles.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  os << "  \"timeline\": [";
  for (std::size_t i = 0; i < profile.timeline.size(); ++i) {
    if (i != 0) os << ", ";
    os << "[" << format_double_json(profile.timeline[i].t_ns) << ", "
       << profile.timeline[i].active << "]";
  }
  os << "]\n";
  os << "}\n";
}

void write_profile_records_json(std::ostream& os,
                                const obs::ProfileSnapshot& snapshot) {
  os << "{\n";
  os << "  \"format\": \"autohet-profile-records\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"records\": [\n";
  for (std::size_t i = 0; i < snapshot.records.size(); ++i) {
    const obs::ProfileRecord& r = snapshot.records[i];
    os << "    {\"kind\": \"" << obs::profile_kind_name(r.kind)
       << "\", \"layer\": " << r.layer << ", \"unit\": " << r.unit
       << ", \"value\": " << r.value << "}";
    os << (i + 1 < snapshot.records.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
}

void print_hotspot_table(std::ostream& os, const PlanProfile& profile,
                         int top_n) {
  std::vector<std::size_t> order(profile.layers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ea = profile.layers[a].energy.total_nj();
    const double eb = profile.layers[b].energy.total_nj();
    if (ea != eb) return ea > eb;
    return a < b;  // stable, deterministic tie-break
  });
  if (top_n > 0 && static_cast<std::size_t>(top_n) < order.size()) {
    order.resize(static_cast<std::size_t>(top_n));
  }

  Table table({"layer", "shape", "tiles", "util%", "energy_nj", "share%",
               "latency_ns", "busy%", "bound", "mvms", "writes"});
  for (std::size_t i : order) {
    const LayerProfile& l = profile.layers[i];
    table.add_row({std::to_string(l.layer), l.shape,
                   std::to_string(l.tiles),
                   format_fixed(l.utilization * 100.0, 1),
                   format_fixed(l.energy.total_nj(), 2),
                   format_fixed(l.energy_share * 100.0, 1),
                   format_fixed(l.latency_ns, 1),
                   format_fixed(l.busy_fraction * 100.0, 1), l.bottleneck,
                   std::to_string(l.mvms_executed),
                   std::to_string(l.program_writes)});
  }
  os << "==== hotspots: " << profile.network << " (top "
     << order.size() << " of " << profile.layers.size()
     << " layers by energy) ====\n";
  table.print(os);
  os << "total energy " << format_fixed(profile.totals.energy.total_nj(), 2)
     << " nJ, latency " << format_fixed(profile.totals.latency_ns, 1)
     << " ns, makespan(batch " << profile.batch << ") "
     << format_fixed(profile.makespan_ns, 1) << " ns, utilization "
     << format_fixed(profile.totals.utilization * 100.0, 1) << "%\n";
}

void merge_profile_into_trace(const PlanProfile& profile) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  // Simulated-time occupancy track: how many pipeline stages are busy at
  // each schedule timestamp. Lives on the same trace timeline as the
  // wall-clock spans (distinguished by its name).
  for (const TimelinePoint& p : profile.timeline) {
    const double ns = std::max(0.0, p.t_ns);
    tracer.counter_at("plan_occupancy_active_stages",
                      static_cast<std::uint64_t>(std::llround(ns)),
                      static_cast<double>(p.active));
  }
}

}  // namespace autohet::report
