// CSV serialization of evaluation artifacts, for plotting/regression
// tooling outside the repo (each bench prints human tables; these emitters
// give machine-readable equivalents).
#pragma once

#include <iosfwd>

#include "reram/stats.hpp"

namespace autohet::report {

/// Per-layer CSV: layer, shape, crossbars, adc_instances, tiles, mvms,
/// utilization, energy components, latency; followed by a TOTAL row.
void write_network_report_csv(std::ostream& os,
                              const reram::NetworkReport& report);

/// Single summary line (plus header): utilization, energy, rue, area,
/// latency, occupied_tiles, empty_crossbars.
void write_summary_csv(std::ostream& os, const std::string& name,
                       const reram::NetworkReport& report,
                       bool with_header = true);

}  // namespace autohet::report
