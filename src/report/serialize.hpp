// Serialization of evaluation artifacts and telemetry, for plotting,
// regression tooling and metric scrapers outside the repo (each bench
// prints human tables; these emitters give machine-readable equivalents).
#pragma once

#include <iosfwd>
#include <string>

#include "mapping/plan.hpp"
#include "obs/metrics.hpp"
#include "reram/faults.hpp"
#include "reram/stats.hpp"

namespace autohet::report {

/// Deterministic shortest-round-trip rendering of a finite double: the
/// fewest significant digits whose strtod parse is bit-identical to
/// `value`. Keeps serialize → parse → re-serialize byte-identical.
std::string format_double_json(double value);

/// Per-layer CSV: layer, shape, crossbars, adc_instances, tiles, mvms,
/// utilization, energy components, latency; followed by a TOTAL row.
void write_network_report_csv(std::ostream& os,
                              const reram::NetworkReport& report);

/// Single summary line (plus header): utilization, energy, rue, area,
/// latency, occupied_tiles, empty_crossbars.
void write_summary_csv(std::ostream& os, const std::string& name,
                       const reram::NetworkReport& report,
                       bool with_header = true);

/// One Monte-Carlo robustness report as a JSON object: trials/samples,
/// accuracy mean/stddev/min/max, mean logit error, per-layer relative
/// error array, and the burned-in fault-map statistics.
void write_robustness_json(std::ostream& os, const std::string& name,
                           const reram::RobustnessReport& report);

/// Prometheus text exposition (format 0.0.4): `# TYPE` lines, counters and
/// gauges as plain samples, histograms as cumulative `_bucket{le="..."}`
/// series (empty log2 buckets are skipped) plus `_sum`/`_count`.
void write_metrics_prometheus(std::ostream& os,
                              const obs::MetricsSnapshot& snapshot);

/// The same snapshot as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets":
/// [{"le": ..., "count": ...}], "count": ..., "sum": ...}}}.
void write_metrics_json(std::ostream& os,
                        const obs::MetricsSnapshot& snapshot);

/// One compiled DeploymentPlan as a JSON document (schema in DESIGN.md,
/// "Compile/deploy split"). Deterministic: fixed key order, shortest
/// round-trip doubles, 64-bit ids (fault fingerprint, fault seed) as
/// decimal strings — so serialize → parse → re-serialize is byte-identical.
void write_plan_json(std::ostream& os, const plan::DeploymentPlan& plan);

/// Parses a plan JSON document (as written by write_plan_json) and
/// validates the result; throws std::invalid_argument on malformed JSON,
/// schema violations, or a plan that fails DeploymentPlan::validate().
plan::DeploymentPlan read_plan_json(const std::string& text);

/// One NetworkReport as a JSON document with every field rendered via the
/// round-trip double format — the byte-comparable replay artifact of the
/// plan round-trip CI smoke.
void write_network_report_json(std::ostream& os,
                               const reram::NetworkReport& report);

}  // namespace autohet::report
