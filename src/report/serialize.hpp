// Serialization of evaluation artifacts and telemetry, for plotting,
// regression tooling and metric scrapers outside the repo (each bench
// prints human tables; these emitters give machine-readable equivalents).
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "reram/faults.hpp"
#include "reram/stats.hpp"

namespace autohet::report {

/// Per-layer CSV: layer, shape, crossbars, adc_instances, tiles, mvms,
/// utilization, energy components, latency; followed by a TOTAL row.
void write_network_report_csv(std::ostream& os,
                              const reram::NetworkReport& report);

/// Single summary line (plus header): utilization, energy, rue, area,
/// latency, occupied_tiles, empty_crossbars.
void write_summary_csv(std::ostream& os, const std::string& name,
                       const reram::NetworkReport& report,
                       bool with_header = true);

/// One Monte-Carlo robustness report as a JSON object: trials/samples,
/// accuracy mean/stddev/min/max, mean logit error, per-layer relative
/// error array, and the burned-in fault-map statistics.
void write_robustness_json(std::ostream& os, const std::string& name,
                           const reram::RobustnessReport& report);

/// Prometheus text exposition (format 0.0.4): `# TYPE` lines, counters and
/// gauges as plain samples, histograms as cumulative `_bucket{le="..."}`
/// series (empty log2 buckets are skipped) plus `_sum`/`_count`.
void write_metrics_prometheus(std::ostream& os,
                              const obs::MetricsSnapshot& snapshot);

/// The same snapshot as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets":
/// [{"le": ..., "count": ...}], "count": ..., "sum": ...}}}.
void write_metrics_json(std::ostream& os,
                        const obs::MetricsSnapshot& snapshot);

}  // namespace autohet::report
