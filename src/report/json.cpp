#include "report/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace autohet::report {

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return v;
  }
  AUTOHET_CHECK(false, "missing JSON key: " + key + " (object at line " +
                           std::to_string(line) + ")");
  return *this;  // unreachable
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return true;
  }
  return false;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    AUTOHET_CHECK(pos_ == text_.size(), err("trailing content"));
    return v;
  }

 private:
  std::string err(const std::string& what) const {
    return "JSON parse error at line " + std::to_string(line_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    AUTOHET_CHECK(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    AUTOHET_CHECK(peek() == c,
                  err(std::string("expected '") + c + "', got '" +
                      text_[pos_] + "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.line = line_;
      v.scalar = parse_string();
      return v;
    }
    JsonValue v;
    v.line = line_;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.line = line_;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      AUTOHET_CHECK(peek() == '"', err("expected object key"));
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.line = line_;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        if (c == '\n') ++line_;
        out += c;
        continue;
      }
      AUTOHET_CHECK(pos_ < text_.size(), err("unterminated escape"));
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          AUTOHET_CHECK(pos_ + 4 <= text_.size(), err("short \\u escape"));
          const unsigned long code =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16);
          pos_ += 4;
          AUTOHET_CHECK(code < 0x80,
                        err("non-ASCII \\u escapes are not supported"));
          out += static_cast<char>(code);
          break;
        }
        default:
          AUTOHET_CHECK(false, err(std::string("bad escape \\") + c));
      }
    }
    AUTOHET_CHECK(pos_ < text_.size(), err("unterminated string"));
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    AUTOHET_CHECK(pos_ > start, err("expected a JSON value"));
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.line = line_;
    v.scalar = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

double as_double(const JsonValue& v, const std::string& key) {
  AUTOHET_CHECK(v.kind == JsonValue::Kind::kNumber,
                "JSON key '" + key + "' must be a number (line " +
                    std::to_string(v.line) + ")");
  return std::strtod(v.scalar.c_str(), nullptr);
}

std::int64_t as_int(const JsonValue& v, const std::string& key) {
  AUTOHET_CHECK(v.kind == JsonValue::Kind::kNumber,
                "JSON key '" + key + "' must be a number (line " +
                    std::to_string(v.line) + ")");
  char* end = nullptr;
  const std::int64_t value = std::strtoll(v.scalar.c_str(), &end, 10);
  AUTOHET_CHECK(end != nullptr && *end == '\0',
                "JSON key '" + key + "' must be an integer (line " +
                    std::to_string(v.line) + ")");
  return value;
}

std::uint64_t as_u64_string(const JsonValue& v, const std::string& key) {
  AUTOHET_CHECK(v.kind == JsonValue::Kind::kString,
                "JSON key '" + key + "' must be a decimal string (line " +
                    std::to_string(v.line) + ")");
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(v.scalar.c_str(), &end, 10);
  AUTOHET_CHECK(end != nullptr && *end == '\0' && !v.scalar.empty(),
                "JSON key '" + key + "' must be a decimal string (line " +
                    std::to_string(v.line) + ")");
  return value;
}

bool as_bool(const JsonValue& v, const std::string& key) {
  AUTOHET_CHECK(v.kind == JsonValue::Kind::kBool,
                "JSON key '" + key + "' must be a boolean (line " +
                    std::to_string(v.line) + ")");
  return v.boolean;
}

std::string as_string(const JsonValue& v, const std::string& key) {
  AUTOHET_CHECK(v.kind == JsonValue::Kind::kString,
                "JSON key '" + key + "' must be a string (line " +
                    std::to_string(v.line) + ")");
  return v.scalar;
}

const std::vector<JsonValue>& as_array(const JsonValue& v,
                                       const std::string& key) {
  AUTOHET_CHECK(v.kind == JsonValue::Kind::kArray,
                "JSON key '" + key + "' must be an array (line " +
                    std::to_string(v.line) + ")");
  return v.items;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace autohet::report
