// Attribution-profile construction and emission.
//
// obs/profile.hpp records *what happened* as flat (kind, layer, unit)
// counters; this layer joins that snapshot with the structures only the
// deployment side knows — the plan's frozen allocation (layer → tile →
// crossbar placement), the analytic NetworkReport (energy split by
// component, latency decomposition), and the batch schedule (occupancy
// timeline) — into one PlanProfile, then emits it three ways:
//
//   * write_profile_json: deterministic profile.json (fixed key order,
//     shortest-round-trip doubles) — byte-identical across runs, thread
//     counts, and kernel variants; schema documented in DESIGN.md §5b;
//   * print_hotspot_table: the `autohet_cli profile` top-N table;
//   * merge_profile_into_trace: schedule-occupancy counter tracks emitted
//     into the global tracer so --trace-out carries simulated-time rows
//     next to the wall-clock spans.
//
// The totals section is copied verbatim from the NetworkReport, so the
// profile's total energy always matches the analytic report exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mapping/plan.hpp"
#include "obs/profile.hpp"
#include "reram/hardware_model.hpp"
#include "reram/scheduler.hpp"
#include "reram/stats.hpp"

namespace autohet::report {

/// Per-crossbar programming-write attribution (layer-local crossbar index
/// in row-major (row_block, col_block) order).
struct CrossbarActivity {
  std::int64_t crossbar = 0;
  std::uint64_t program_writes = 0;
};

/// One layer's attribution row.
struct LayerProfile {
  std::int64_t layer = 0;
  std::string shape;        ///< crossbar type, e.g. "128x64"
  std::int64_t tiles = 0;   ///< exclusive tiles before sharing
  std::int64_t crossbars = 0;
  double utilization = 0.0;
  std::int64_t mvms_analytic = 0;    ///< per inference (hardware model)
  std::uint64_t mvms_executed = 0;   ///< functional-sim MVMs recorded
  std::uint64_t program_writes = 0;  ///< recorded cell writes (sum below)
  std::vector<CrossbarActivity> crossbar_activity;
  reram::EnergyBreakdown energy;
  double energy_share = 0.0;  ///< of the network total, in [0, 1]
  double latency_ns = 0.0;    ///< analytic per-inference latency
  reram::LayerLatencyTerms latency_terms;  ///< per-MVM decomposition
  std::string bottleneck;     ///< "compute" | "adc" | "noc"
  double busy_ns = 0.0;       ///< summed task time in the batch schedule
  double busy_fraction = 0.0; ///< busy_ns / makespan (idle = 1 - this)
};

/// One occupant layer's share of a tile.
struct TileOccupant {
  std::int64_t layer = 0;
  std::int64_t crossbars = 0;        ///< logical crossbars held here
  double energy_nj = 0.0;            ///< layer energy × crossbar share
  std::uint64_t program_writes = 0;  ///< writes into this tile's crossbars
};

/// One physical tile's attribution row (tile-id order, released included).
struct TileProfile {
  std::int64_t tile = 0;
  std::string shape;
  std::int64_t empty_crossbars = 0;
  bool released = false;
  double energy_nj = 0.0;  ///< sum of occupant shares
  double busy_ns = 0.0;    ///< max over occupant layers' busy_ns
  std::vector<TileOccupant> occupants;
};

/// Occupancy step function over simulated time: `active` pipeline stages
/// after time `t_ns` (task starts +1, finishes -1; simultaneous events
/// coalesce into one point).
struct TimelinePoint {
  double t_ns = 0.0;
  std::int64_t active = 0;
};

/// The joined attribution profile of one deployed plan.
struct PlanProfile {
  std::string network;
  std::int64_t batch = 0;  ///< images in the analyzed schedule
  reram::NetworkReport totals;  ///< verbatim analytic report
  double makespan_ns = 0.0;
  double steady_throughput = 0.0;  ///< inferences/s from the schedule
  std::vector<LayerProfile> layers;
  std::vector<TileProfile> tiles;
  std::vector<TimelinePoint> timeline;
  // Whole-run counters from the recorded snapshot.
  std::uint64_t plan_evals = 0;
  std::uint64_t analytic_layer_evals = 0;
  std::uint64_t mc_trials = 0;
  std::uint64_t mvms_executed = 0;
  std::uint64_t program_writes = 0;
};

/// Joins a recorded snapshot with the plan's allocation, its analytic
/// report, and a batch schedule. Pure and deterministic: equal inputs
/// produce equal profiles.
PlanProfile build_plan_profile(const plan::DeploymentPlan& plan,
                               const reram::NetworkReport& report,
                               const reram::ScheduleReport& schedule,
                               const obs::ProfileSnapshot& recorded,
                               std::int64_t batch);

/// Deterministic profile.json ("autohet-profile" version 1).
void write_profile_json(std::ostream& os, const PlanProfile& profile);

/// Raw recorded counters as JSON — the generic --profile-out sink for
/// binaries that have no plan context at flush time (benches, search).
void write_profile_records_json(std::ostream& os,
                                const obs::ProfileSnapshot& snapshot);

/// Top-N hotspot table (layers by energy) plus totals, for the CLI.
void print_hotspot_table(std::ostream& os, const PlanProfile& profile,
                         int top_n);

/// Emits the occupancy timeline and per-stage busy fractions as counter
/// tracks on the global tracer (simulated-time timestamps). No-op when
/// tracing is disabled.
void merge_profile_into_trace(const PlanProfile& profile);

}  // namespace autohet::report
