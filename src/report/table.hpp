// Aligned console tables and CSV emitters shared by the benches and
// examples, so every reproduced figure/table prints in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace autohet::report {

/// Formats a double in compact scientific notation (e.g. "2.29e+10").
std::string format_sci(double value, int precision = 2);
/// Formats a double in fixed notation.
std::string format_fixed(double value, int precision = 2);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Prints with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Emits RFC-4180-ish CSV (fields with commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autohet::report
