#include "report/serialize.hpp"

#include <ostream>

#include "report/table.hpp"

namespace autohet::report {

void write_network_report_csv(std::ostream& os,
                              const reram::NetworkReport& report) {
  Table table({"layer", "shape", "logical_crossbars", "adc_instances",
               "tiles", "mvms", "utilization", "adc_nj", "dac_nj", "cell_nj",
               "shift_add_nj", "buffer_nj", "total_nj", "latency_ns"});
  for (std::size_t k = 0; k < report.layers.size(); ++k) {
    const auto& lr = report.layers[k];
    table.add_row({std::to_string(k + 1), lr.shape.name(),
                   std::to_string(lr.logical_crossbars),
                   std::to_string(lr.adc_instances),
                   std::to_string(lr.tiles),
                   std::to_string(lr.mvm_invocations),
                   format_fixed(lr.utilization, 6),
                   format_sci(lr.energy.adc_nj, 6),
                   format_sci(lr.energy.dac_nj, 6),
                   format_sci(lr.energy.cell_nj, 6),
                   format_sci(lr.energy.shift_add_nj, 6),
                   format_sci(lr.energy.buffer_nj, 6),
                   format_sci(lr.energy.total_nj(), 6),
                   format_sci(lr.latency_ns, 6)});
  }
  table.add_row({"TOTAL", "", "", "", std::to_string(report.occupied_tiles),
                 "", format_fixed(report.utilization, 6),
                 format_sci(report.energy.adc_nj, 6),
                 format_sci(report.energy.dac_nj, 6),
                 format_sci(report.energy.cell_nj, 6),
                 format_sci(report.energy.shift_add_nj, 6),
                 format_sci(report.energy.buffer_nj, 6),
                 format_sci(report.energy.total_nj(), 6),
                 format_sci(report.latency_ns, 6)});
  table.print_csv(os);
}

void write_summary_csv(std::ostream& os, const std::string& name,
                       const reram::NetworkReport& report, bool with_header) {
  if (with_header) {
    os << "name,utilization,energy_nj,rue,area_um2,latency_ns,"
          "occupied_tiles,empty_crossbars\n";
  }
  os << name << ',' << format_fixed(report.utilization, 6) << ','
     << format_sci(report.energy.total_nj(), 6) << ','
     << format_sci(report.rue(), 6) << ','
     << format_sci(report.area.total_um2(), 6) << ','
     << format_sci(report.latency_ns, 6) << ',' << report.occupied_tiles
     << ',' << report.empty_crossbars << '\n';
}

void write_robustness_json(std::ostream& os, const std::string& name,
                           const reram::RobustnessReport& report) {
  os << "{\n  \"name\": \"" << name << "\",\n"
     << "  \"trials\": " << report.trials << ",\n"
     << "  \"samples\": " << report.samples << ",\n"
     << "  \"accuracy_mean\": " << format_fixed(report.mean_accuracy, 6)
     << ",\n"
     << "  \"accuracy_stddev\": " << format_fixed(report.stddev_accuracy, 6)
     << ",\n"
     << "  \"accuracy_min\": " << format_fixed(report.min_accuracy, 6)
     << ",\n"
     << "  \"accuracy_max\": " << format_fixed(report.max_accuracy, 6)
     << ",\n"
     << "  \"mean_logit_error\": " << format_sci(report.mean_logit_error, 6)
     << ",\n  \"layer_error\": [";
  for (std::size_t i = 0; i < report.layer_error.size(); ++i) {
    os << (i == 0 ? "" : ", ") << format_sci(report.layer_error[i], 6);
  }
  os << "],\n  \"fault_stats\": {"
     << "\"physical_cells\": " << report.fault_stats.physical_cells
     << ", \"stuck_at_zero\": " << report.fault_stats.stuck_at_zero
     << ", \"stuck_at_one\": " << report.fault_stats.stuck_at_one
     << ", \"weights_changed\": " << report.fault_stats.weights_changed
     << "}\n}\n";
}

namespace {

/// Highest non-empty bucket index, or 0 when the histogram is empty.
std::size_t last_used_bucket(
    const obs::MetricsSnapshot::HistogramSample& h) {
  std::size_t last = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] > 0) last = b;
  }
  return last;
}

}  // namespace

void write_metrics_prometheus(std::ostream& os,
                              const obs::MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    os << "# TYPE " << c.name << " counter\n"
       << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    os << "# TYPE " << g.name << " gauge\n" << g.name << ' ' << g.value
       << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    const std::size_t last = last_used_bucket(h);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= last; ++b) {
      if (h.buckets[b] == 0 && b != last) continue;
      cumulative += h.buckets[b];
      os << h.name << "_bucket{le=\""
         << obs::Histogram::bucket_upper_bound(b) << "\"} " << cumulative
         << '\n';
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n'
       << h.name << "_sum " << h.sum << '\n'
       << h.name << "_count " << h.count << '\n';
  }
}

void write_metrics_json(std::ostream& os,
                        const obs::MetricsSnapshot& snapshot) {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << c.name
       << "\": " << c.value;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << g.name << "\": " << g.value;
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    const std::size_t last = last_used_bucket(h);
    std::uint64_t cumulative = 0;
    bool first = true;
    for (std::size_t b = 0; b <= last; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      os << (first ? "" : ", ") << "{\"le\": "
         << obs::Histogram::bucket_upper_bound(b)
         << ", \"count\": " << cumulative << '}';
      first = false;
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

}  // namespace autohet::report
