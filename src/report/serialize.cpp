#include "report/serialize.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "nn/graph.hpp"
#include "report/json.hpp"
#include "report/table.hpp"

namespace autohet::report {

std::string format_double_json(double value) {
  AUTOHET_CHECK(std::isfinite(value), "JSON cannot represent NaN/Inf");
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    const double parsed = std::strtod(buf, nullptr);
    if (std::bit_cast<std::uint64_t>(parsed) ==
        std::bit_cast<std::uint64_t>(value)) {
      return buf;
    }
  }
  return buf;  // %.17g always round-trips IEEE doubles
}

void write_network_report_csv(std::ostream& os,
                              const reram::NetworkReport& report) {
  Table table({"layer", "shape", "logical_crossbars", "adc_instances",
               "tiles", "mvms", "utilization", "adc_nj", "dac_nj", "cell_nj",
               "shift_add_nj", "buffer_nj", "total_nj", "latency_ns"});
  for (std::size_t k = 0; k < report.layers.size(); ++k) {
    const auto& lr = report.layers[k];
    table.add_row({std::to_string(k + 1), lr.shape.name(),
                   std::to_string(lr.logical_crossbars),
                   std::to_string(lr.adc_instances),
                   std::to_string(lr.tiles),
                   std::to_string(lr.mvm_invocations),
                   format_fixed(lr.utilization, 6),
                   format_sci(lr.energy.adc_nj, 6),
                   format_sci(lr.energy.dac_nj, 6),
                   format_sci(lr.energy.cell_nj, 6),
                   format_sci(lr.energy.shift_add_nj, 6),
                   format_sci(lr.energy.buffer_nj, 6),
                   format_sci(lr.energy.total_nj(), 6),
                   format_sci(lr.latency_ns, 6)});
  }
  table.add_row({"TOTAL", "", "", "", std::to_string(report.occupied_tiles),
                 "", format_fixed(report.utilization, 6),
                 format_sci(report.energy.adc_nj, 6),
                 format_sci(report.energy.dac_nj, 6),
                 format_sci(report.energy.cell_nj, 6),
                 format_sci(report.energy.shift_add_nj, 6),
                 format_sci(report.energy.buffer_nj, 6),
                 format_sci(report.energy.total_nj(), 6),
                 format_sci(report.latency_ns, 6)});
  table.print_csv(os);
}

void write_summary_csv(std::ostream& os, const std::string& name,
                       const reram::NetworkReport& report, bool with_header) {
  if (with_header) {
    os << "name,utilization,energy_nj,rue,area_um2,latency_ns,"
          "occupied_tiles,empty_crossbars\n";
  }
  os << name << ',' << format_fixed(report.utilization, 6) << ','
     << format_sci(report.energy.total_nj(), 6) << ','
     << format_sci(report.rue(), 6) << ','
     << format_sci(report.area.total_um2(), 6) << ','
     << format_sci(report.latency_ns, 6) << ',' << report.occupied_tiles
     << ',' << report.empty_crossbars << '\n';
}

void write_robustness_json(std::ostream& os, const std::string& name,
                           const reram::RobustnessReport& report) {
  os << "{\n  \"name\": \"" << name << "\",\n"
     << "  \"trials\": " << report.trials << ",\n"
     << "  \"trials_requested\": " << report.trials_requested << ",\n"
     << "  \"early_stopped\": "
     << (report.early_stopped ? "true" : "false") << ",\n"
     << "  \"samples\": " << report.samples << ",\n"
     << "  \"accuracy_mean\": " << format_fixed(report.mean_accuracy, 6)
     << ",\n"
     << "  \"accuracy_ci_lower\": "
     << format_fixed(report.accuracy_ci_lower, 6) << ",\n"
     << "  \"accuracy_ci_upper\": "
     << format_fixed(report.accuracy_ci_upper, 6) << ",\n"
     << "  \"accuracy_stddev\": " << format_fixed(report.stddev_accuracy, 6)
     << ",\n"
     << "  \"accuracy_min\": " << format_fixed(report.min_accuracy, 6)
     << ",\n"
     << "  \"accuracy_max\": " << format_fixed(report.max_accuracy, 6)
     << ",\n"
     << "  \"mean_logit_error\": " << format_sci(report.mean_logit_error, 6)
     << ",\n  \"layer_error\": [";
  for (std::size_t i = 0; i < report.layer_error.size(); ++i) {
    os << (i == 0 ? "" : ", ") << format_sci(report.layer_error[i], 6);
  }
  os << "],\n  \"fault_stats\": {"
     << "\"physical_cells\": " << report.fault_stats.physical_cells
     << ", \"stuck_at_zero\": " << report.fault_stats.stuck_at_zero
     << ", \"stuck_at_one\": " << report.fault_stats.stuck_at_one
     << ", \"weights_changed\": " << report.fault_stats.weights_changed
     << "}\n}\n";
}

namespace {

/// Highest non-empty bucket index, or 0 when the histogram is empty.
std::size_t last_used_bucket(
    const obs::MetricsSnapshot::HistogramSample& h) {
  std::size_t last = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] > 0) last = b;
  }
  return last;
}

}  // namespace

void write_metrics_prometheus(std::ostream& os,
                              const obs::MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    os << "# TYPE " << c.name << " counter\n"
       << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    os << "# TYPE " << g.name << " gauge\n" << g.name << ' ' << g.value
       << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    const std::size_t last = last_used_bucket(h);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= last; ++b) {
      if (h.buckets[b] == 0 && b != last) continue;
      cumulative += h.buckets[b];
      os << h.name << "_bucket{le=\""
         << obs::Histogram::bucket_upper_bound(b) << "\"} " << cumulative
         << '\n';
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n'
       << h.name << "_sum " << h.sum << '\n'
       << h.name << "_count " << h.count << '\n';
  }
}

void write_metrics_json(std::ostream& os,
                        const obs::MetricsSnapshot& snapshot) {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << c.name
       << "\": " << c.value;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << g.name << "\": " << g.value;
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    const std::size_t last = last_used_bucket(h);
    std::uint64_t cumulative = 0;
    bool first = true;
    for (std::size_t b = 0; b <= last; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      os << (first ? "" : ", ") << "{\"le\": "
         << obs::Histogram::bucket_upper_bound(b)
         << ", \"count\": " << cumulative << '}';
      first = false;
    }
    // Terminal +Inf bucket (mirrors the Prometheus exposition above) so a
    // consumer can compute quantiles without knowing the bucket layout.
    os << (first ? "" : ", ") << "{\"le\": \"+Inf\", \"count\": " << h.count
       << '}';
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

// ---------------------------------------------------------------------------
// DeploymentPlan JSON (schema documented in DESIGN.md, "Compile/deploy
// split"). The writer is deterministic — fixed key order, round-trip double
// rendering, 64-bit ids as decimal strings — and the reader below is a
// minimal recursive-descent JSON parser (the repo deliberately has no
// external JSON dependency).
// ---------------------------------------------------------------------------

namespace {

const char* layer_type_name(nn::LayerType t) {
  switch (t) {
    case nn::LayerType::kConv: return "conv";
    case nn::LayerType::kFullyConnected: return "fc";
    case nn::LayerType::kMaxPool: return "maxpool";
    case nn::LayerType::kAvgPool: return "avgpool";
  }
  return "conv";
}

nn::LayerType layer_type_from_name(const std::string& name) {
  if (name == "conv") return nn::LayerType::kConv;
  if (name == "fc") return nn::LayerType::kFullyConnected;
  if (name == "maxpool") return nn::LayerType::kMaxPool;
  if (name == "avgpool") return nn::LayerType::kAvgPool;
  AUTOHET_CHECK(false, "unknown layer type: " + name);
  return nn::LayerType::kConv;
}

// `with_vector_unit` gates the v2-only vector functional unit keys so v1
// documents stay byte-identical to every historical plan JSON.
void write_device_json(std::ostream& os, const reram::DeviceParams& d,
                       const char* indent, bool with_vector_unit) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\n"
     << indent << "  \"weight_bits\": " << d.weight_bits << ",\n"
     << indent << "  \"input_bits\": " << d.input_bits << ",\n"
     << indent << "  \"cell_bits\": " << d.cell_bits << ",\n"
     << indent << "  \"dac_bits\": " << d.dac_bits << ",\n"
     << indent << "  \"adc_resolution_bits\": " << d.adc_resolution_bits
     << ",\n"
     << indent << "  \"adc_share\": " << d.adc_share << ",\n"
     << indent << "  \"adc_energy_pj\": " << f(d.adc_energy_pj) << ",\n"
     << indent << "  \"dac_energy_pj\": " << f(d.dac_energy_pj) << ",\n"
     << indent << "  \"cell_read_energy_pj\": " << f(d.cell_read_energy_pj)
     << ",\n"
     << indent << "  \"shift_add_energy_pj\": " << f(d.shift_add_energy_pj)
     << ",\n"
     << indent << "  \"buffer_rw_energy_pj\": " << f(d.buffer_rw_energy_pj)
     << ",\n"
     << indent << "  \"adc_area_um2\": " << f(d.adc_area_um2) << ",\n"
     << indent << "  \"dac_area_um2\": " << f(d.dac_area_um2) << ",\n"
     << indent << "  \"cell_area_um2\": " << f(d.cell_area_um2) << ",\n"
     << indent << "  \"shift_add_area_um2\": " << f(d.shift_add_area_um2)
     << ",\n"
     << indent << "  \"tile_overhead_area_um2\": "
     << f(d.tile_overhead_area_um2) << ",\n"
     << indent << "  \"base_cycle_ns\": " << f(d.base_cycle_ns) << ",\n"
     << indent << "  \"wire_delay_ns_per_row\": " << f(d.wire_delay_ns_per_row)
     << ",\n"
     << indent << "  \"adc_latency_ns\": " << f(d.adc_latency_ns) << ",\n"
     << indent << "  \"merge_latency_ns\": " << f(d.merge_latency_ns) << ",\n"
     << indent << "  \"bus_latency_ns\": " << f(d.bus_latency_ns);
  if (with_vector_unit) {
    os << ",\n"
       << indent << "  \"vector_lanes\": " << d.vector_lanes << ",\n"
       << indent << "  \"vector_op_energy_pj\": " << f(d.vector_op_energy_pj)
       << ",\n"
       << indent << "  \"vector_cycle_ns\": " << f(d.vector_cycle_ns);
  }
  os << '\n' << indent << '}';
}

void write_faults_json(std::ostream& os, const reram::FaultConfig& fc,
                       const char* indent) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\n"
     << indent << "  \"stuck_at_zero_rate\": " << f(fc.stuck_at_zero_rate)
     << ",\n"
     << indent << "  \"stuck_at_one_rate\": " << f(fc.stuck_at_one_rate)
     << ",\n"
     << indent << "  \"program_sigma\": " << f(fc.program_sigma) << ",\n"
     << indent << "  \"read_sigma\": " << f(fc.read_sigma) << ",\n"
     << indent << "  \"drift_time_s\": " << f(fc.drift_time_s) << ",\n"
     << indent << "  \"drift_nu\": " << f(fc.drift_nu) << ",\n"
     << indent << "  \"cell_bits\": " << fc.cell_bits << ",\n"
     << indent << "  \"seed\": \"" << fc.seed << "\"\n"
     << indent << '}';
}

void write_energy_json(std::ostream& os, const reram::EnergyBreakdown& e) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\"adc_nj\": " << f(e.adc_nj) << ", \"dac_nj\": " << f(e.dac_nj)
     << ", \"cell_nj\": " << f(e.cell_nj)
     << ", \"shift_add_nj\": " << f(e.shift_add_nj)
     << ", \"buffer_nj\": " << f(e.buffer_nj) << '}';
}

void write_layer_spec_json(std::ostream& os, const nn::LayerSpec& l) {
  os << "{\"type\": \"" << layer_type_name(l.type)
     << "\", \"in_channels\": " << l.in_channels
     << ", \"out_channels\": " << l.out_channels << ", \"kernel\": "
     << l.kernel << ", \"stride\": " << l.stride << ", \"pad\": " << l.pad
     << ", \"in_height\": " << l.in_height << ", \"in_width\": " << l.in_width
     << ", \"relu_after\": " << (l.relu_after ? "true" : "false") << '}';
}

// One node object per line, keyed by kind/name/inputs plus the kind-specific
// payload (input shape, or the embedded layer spec). Shapes of non-input
// nodes are re-inferred by the GraphBuilder on read, so the document stays
// minimal and tamper-evident.
void write_graph_json(std::ostream& os, const nn::Graph& graph) {
  os << "{\n    \"name\": \"" << json_escape(graph.name()) << "\",\n"
     << "    \"nodes\": [";
  const std::vector<nn::GraphNode>& nodes = graph.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const nn::GraphNode& n = nodes[i];
    os << (i == 0 ? "\n" : ",\n") << "      {\"kind\": \""
       << nn::op_kind_name(n.kind) << "\", \"name\": \""
       << json_escape(n.name) << "\", \"inputs\": [";
    for (std::size_t o = 0; o < n.inputs.size(); ++o) {
      os << (o == 0 ? "" : ", ") << n.inputs[o];
    }
    os << ']';
    if (n.kind == nn::OpKind::kInput) {
      os << ", \"channels\": " << n.shape.channels
         << ", \"height\": " << n.shape.height
         << ", \"width\": " << n.shape.width;
    } else if (n.kind == nn::OpKind::kLayer) {
      os << ", \"layer\": ";
      write_layer_spec_json(os, n.layer);
    }
    os << '}';
  }
  os << "\n    ]\n  }";
}

#define AUTOHET_READ_D(obj, target, field) \
  (target).field = as_double((obj).at(#field), #field)
#define AUTOHET_READ_I(obj, target, field) \
  (target).field = static_cast<decltype((target).field)>( \
      as_int((obj).at(#field), #field))

reram::DeviceParams read_device(const JsonValue& obj) {
  reram::DeviceParams d;
  AUTOHET_READ_I(obj, d, weight_bits);
  AUTOHET_READ_I(obj, d, input_bits);
  AUTOHET_READ_I(obj, d, cell_bits);
  AUTOHET_READ_I(obj, d, dac_bits);
  AUTOHET_READ_I(obj, d, adc_resolution_bits);
  AUTOHET_READ_I(obj, d, adc_share);
  AUTOHET_READ_D(obj, d, adc_energy_pj);
  AUTOHET_READ_D(obj, d, dac_energy_pj);
  AUTOHET_READ_D(obj, d, cell_read_energy_pj);
  AUTOHET_READ_D(obj, d, shift_add_energy_pj);
  AUTOHET_READ_D(obj, d, buffer_rw_energy_pj);
  AUTOHET_READ_D(obj, d, adc_area_um2);
  AUTOHET_READ_D(obj, d, dac_area_um2);
  AUTOHET_READ_D(obj, d, cell_area_um2);
  AUTOHET_READ_D(obj, d, shift_add_area_um2);
  AUTOHET_READ_D(obj, d, tile_overhead_area_um2);
  AUTOHET_READ_D(obj, d, base_cycle_ns);
  AUTOHET_READ_D(obj, d, wire_delay_ns_per_row);
  AUTOHET_READ_D(obj, d, adc_latency_ns);
  AUTOHET_READ_D(obj, d, merge_latency_ns);
  AUTOHET_READ_D(obj, d, bus_latency_ns);
  // Vector-unit keys only exist in v2 documents; v1 plans predate the
  // vector functional unit and get the defaults.
  if (obj.has("vector_lanes")) AUTOHET_READ_I(obj, d, vector_lanes);
  if (obj.has("vector_op_energy_pj")) {
    AUTOHET_READ_D(obj, d, vector_op_energy_pj);
  }
  if (obj.has("vector_cycle_ns")) AUTOHET_READ_D(obj, d, vector_cycle_ns);
  return d;
}

reram::FaultConfig read_faults(const JsonValue& obj) {
  reram::FaultConfig fc;
  AUTOHET_READ_D(obj, fc, stuck_at_zero_rate);
  AUTOHET_READ_D(obj, fc, stuck_at_one_rate);
  AUTOHET_READ_D(obj, fc, program_sigma);
  AUTOHET_READ_D(obj, fc, read_sigma);
  AUTOHET_READ_D(obj, fc, drift_time_s);
  AUTOHET_READ_D(obj, fc, drift_nu);
  AUTOHET_READ_I(obj, fc, cell_bits);
  fc.seed = as_u64_string(obj.at("seed"), "seed");
  return fc;
}

nn::LayerSpec read_layer(const JsonValue& obj) {
  nn::LayerSpec spec;
  spec.type = layer_type_from_name(as_string(obj.at("type"), "type"));
  AUTOHET_READ_I(obj, spec, in_channels);
  AUTOHET_READ_I(obj, spec, out_channels);
  AUTOHET_READ_I(obj, spec, kernel);
  AUTOHET_READ_I(obj, spec, stride);
  AUTOHET_READ_I(obj, spec, pad);
  AUTOHET_READ_I(obj, spec, in_height);
  AUTOHET_READ_I(obj, spec, in_width);
  spec.relu_after = as_bool(obj.at("relu_after"), "relu_after");
  return spec;
}

mapping::LayerMapping read_mapping(const JsonValue& obj) {
  mapping::LayerMapping m;
  m.shape.rows = as_int(obj.at("rows"), "rows");
  m.shape.cols = as_int(obj.at("cols"), "cols");
  AUTOHET_READ_I(obj, m, row_blocks);
  AUTOHET_READ_I(obj, m, col_blocks);
  AUTOHET_READ_I(obj, m, kernels_per_row_block);
  m.split_kernel = as_bool(obj.at("split_kernel"), "split_kernel");
  AUTOHET_READ_I(obj, m, useful_cells);
  AUTOHET_READ_I(obj, m, weight_rows);
  AUTOHET_READ_I(obj, m, weight_cols);
  return m;
}

// Replays the serialized node list through a GraphBuilder so every wiring
// and shape rule is re-checked; a tampered document fails with the JSON
// line of the offending node appended to the builder's message.
nn::Graph read_graph(const JsonValue& obj) {
  nn::GraphBuilder builder(as_string(obj.at("name"), "name"));
  for (const JsonValue& n : as_array(obj.at("nodes"), "nodes")) {
    const JsonValue& kind_v = n.at("kind");
    nn::OpKind kind = nn::OpKind::kInput;
    try {
      kind = nn::op_kind_from_name(as_string(kind_v, "kind"));
    } catch (const std::invalid_argument& e) {
      AUTOHET_CHECK(false, std::string(e.what()) + " (line " +
                               std::to_string(kind_v.line) + ")");
    }
    std::vector<std::int64_t> inputs;
    for (const JsonValue& v : as_array(n.at("inputs"), "inputs")) {
      inputs.push_back(as_int(v, "inputs[]"));
    }
    const auto arity = [&](std::size_t want) {
      AUTOHET_CHECK(inputs.size() == want,
                    std::string(nn::op_kind_name(kind)) + " node takes " +
                        std::to_string(want) + " input(s), got " +
                        std::to_string(inputs.size()));
    };
    try {
      switch (kind) {
        case nn::OpKind::kInput:
          arity(0);
          builder.input(as_int(n.at("channels"), "channels"),
                        as_int(n.at("height"), "height"),
                        as_int(n.at("width"), "width"));
          break;
        case nn::OpKind::kLayer:
          arity(1);
          builder.layer(inputs[0], read_layer(n.at("layer")));
          break;
        case nn::OpKind::kResidualAdd:
          arity(2);
          builder.residual_add(inputs[0], inputs[1]);
          break;
        case nn::OpKind::kConcat:
          builder.concat(inputs);
          break;
        case nn::OpKind::kActivation:
          arity(1);
          builder.activation(inputs[0]);
          break;
        case nn::OpKind::kGlobalAvgPool:
          arity(1);
          builder.global_avg_pool(inputs[0]);
          break;
      }
      builder.rename_last(as_string(n.at("name"), "name"));
    } catch (const std::invalid_argument& e) {
      AUTOHET_CHECK(false, std::string(e.what()) + " (graph node at line " +
                               std::to_string(n.line) + ")");
    }
  }
  try {
    return builder.build();
  } catch (const std::invalid_argument& e) {
    AUTOHET_CHECK(false, std::string(e.what()) + " (graph at line " +
                             std::to_string(obj.line) + ")");
  }
  return nn::Graph{};  // unreachable
}

#undef AUTOHET_READ_D
#undef AUTOHET_READ_I

}  // namespace

void write_plan_json(std::ostream& os, const plan::DeploymentPlan& plan) {
  os << "{\n"
     << "  \"format\": \"autohet-plan\",\n"
     << "  \"version\": " << plan.version << ",\n"
     << "  \"network\": \"" << json_escape(plan.network) << "\",\n"
     << "  \"fault_fingerprint\": \"" << plan.fault_fingerprint << "\",\n"
     << "  \"accel\": {\n"
     << "    \"pes_per_tile\": " << plan.accel.pes_per_tile << ",\n"
     << "    \"tile_shared\": "
     << (plan.accel.tile_shared ? "true" : "false") << ",\n"
     << "    \"device\": ";
  write_device_json(os, plan.accel.device, "    ", plan.has_graph());
  os << ",\n    \"faults\": ";
  write_faults_json(os, plan.accel.faults, "    ");
  os << "\n  },\n  \"layers\": [";
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    ";
    write_layer_spec_json(os, plan.layers[i]);
  }
  os << "\n  ],";
  if (plan.has_graph()) {
    os << "\n  \"graph\": ";
    write_graph_json(os, plan.graph);
    os << ',';
  }
  os << "\n  \"allocation\": {\n"
     << "    \"xbs_per_tile\": " << plan.allocation.xbs_per_tile << ",\n"
     << "    \"layers\": [";
  for (std::size_t i = 0; i < plan.allocation.layers.size(); ++i) {
    const mapping::LayerAllocation& a = plan.allocation.layers[i];
    const mapping::LayerMapping& m = a.mapping;
    os << (i == 0 ? "\n" : ",\n") << "      {\"layer_id\": " << a.layer_id
       << ", \"tiles_allocated\": " << a.tiles_allocated
       << ", \"mapping\": {\"rows\": " << m.shape.rows
       << ", \"cols\": " << m.shape.cols
       << ", \"row_blocks\": " << m.row_blocks
       << ", \"col_blocks\": " << m.col_blocks
       << ", \"kernels_per_row_block\": " << m.kernels_per_row_block
       << ", \"split_kernel\": " << (m.split_kernel ? "true" : "false")
       << ", \"useful_cells\": " << m.useful_cells
       << ", \"weight_rows\": " << m.weight_rows
       << ", \"weight_cols\": " << m.weight_cols << "}}";
  }
  os << "\n    ],\n    \"tiles\": [";
  for (std::size_t i = 0; i < plan.allocation.tiles.size(); ++i) {
    const mapping::Tile& t = plan.allocation.tiles[i];
    os << (i == 0 ? "\n" : ",\n") << "      {\"id\": " << t.id
       << ", \"rows\": " << t.shape.rows << ", \"cols\": " << t.shape.cols
       << ", \"empty_xbs\": " << t.empty_xbs << ", \"layer_ids\": [";
    for (std::size_t o = 0; o < t.layer_ids.size(); ++o) {
      os << (o == 0 ? "" : ", ") << t.layer_ids[o];
    }
    os << "], \"layer_xbs\": [";
    for (std::size_t o = 0; o < t.layer_xbs.size(); ++o) {
      os << (o == 0 ? "" : ", ") << t.layer_xbs[o];
    }
    os << "], \"released\": " << (t.released ? "true" : "false") << '}';
  }
  os << "\n    ],\n    \"remap\": [";
  bool first_remap = true;
  for (const auto& [to, from] : plan.allocation.remap) {
    os << (first_remap ? "\n" : ",\n") << "      {\"to\": " << to
       << ", \"from\": [";
    for (std::size_t o = 0; o < from.size(); ++o) {
      os << (o == 0 ? "" : ", ") << from[o];
    }
    os << "]}";
    first_remap = false;
  }
  os << "\n    ]\n  }\n}\n";
}

plan::DeploymentPlan read_plan_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  AUTOHET_CHECK(doc.kind == JsonValue::Kind::kObject,
                "plan JSON must be an object");
  AUTOHET_CHECK(as_string(doc.at("format"), "format") == "autohet-plan",
                "not an autohet-plan document");

  plan::DeploymentPlan plan;
  const JsonValue& version_v = doc.at("version");
  plan.version = static_cast<int>(as_int(version_v, "version"));
  AUTOHET_CHECK(plan.version == plan::kPlanVersion ||
                    plan.version == plan::kPlanVersionGraph,
                "unsupported plan version " + std::to_string(plan.version) +
                    " (this build understands v1 and v2) (line " +
                    std::to_string(version_v.line) + ")");
  plan.network = as_string(doc.at("network"), "network");
  plan.fault_fingerprint =
      as_u64_string(doc.at("fault_fingerprint"), "fault_fingerprint");

  const JsonValue& accel = doc.at("accel");
  plan.accel.pes_per_tile = as_int(accel.at("pes_per_tile"), "pes_per_tile");
  plan.accel.tile_shared = as_bool(accel.at("tile_shared"), "tile_shared");
  plan.accel.device = read_device(accel.at("device"));
  plan.accel.faults = read_faults(accel.at("faults"));

  for (const JsonValue& l : as_array(doc.at("layers"), "layers")) {
    plan.layers.push_back(read_layer(l));
  }

  if (plan.version >= plan::kPlanVersionGraph) {
    plan.graph = read_graph(doc.at("graph"));
  } else if (doc.has("graph")) {
    AUTOHET_CHECK(false,
                  "v1 plan must not carry a graph section (line " +
                      std::to_string(doc.at("graph").line) + ")");
  }

  const JsonValue& alloc = doc.at("allocation");
  plan.allocation.xbs_per_tile =
      as_int(alloc.at("xbs_per_tile"), "xbs_per_tile");
  for (const JsonValue& l : as_array(alloc.at("layers"), "layers")) {
    mapping::LayerAllocation a;
    a.layer_id = as_int(l.at("layer_id"), "layer_id");
    a.tiles_allocated = as_int(l.at("tiles_allocated"), "tiles_allocated");
    a.mapping = read_mapping(l.at("mapping"));
    plan.allocation.layers.push_back(std::move(a));
  }
  for (const JsonValue& t : as_array(alloc.at("tiles"), "tiles")) {
    mapping::Tile tile;
    tile.id = as_int(t.at("id"), "id");
    tile.shape.rows = as_int(t.at("rows"), "rows");
    tile.shape.cols = as_int(t.at("cols"), "cols");
    tile.empty_xbs = as_int(t.at("empty_xbs"), "empty_xbs");
    for (const JsonValue& v : as_array(t.at("layer_ids"), "layer_ids")) {
      tile.layer_ids.push_back(as_int(v, "layer_ids[]"));
    }
    for (const JsonValue& v : as_array(t.at("layer_xbs"), "layer_xbs")) {
      tile.layer_xbs.push_back(as_int(v, "layer_xbs[]"));
    }
    tile.released = as_bool(t.at("released"), "released");
    plan.allocation.tiles.push_back(std::move(tile));
  }
  for (const JsonValue& r : as_array(alloc.at("remap"), "remap")) {
    std::vector<std::int64_t> from;
    for (const JsonValue& v : as_array(r.at("from"), "from")) {
      from.push_back(as_int(v, "from[]"));
    }
    plan.allocation.remap.emplace(as_int(r.at("to"), "to"), std::move(from));
  }

  plan.validate();
  return plan;
}

void write_network_report_json(std::ostream& os,
                               const reram::NetworkReport& report) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\n  \"layers\": [";
  for (std::size_t k = 0; k < report.layers.size(); ++k) {
    const reram::LayerReport& lr = report.layers[k];
    os << (k == 0 ? "\n" : ",\n") << "    {\"shape\": \"" << lr.shape.name()
       << "\", \"logical_crossbars\": " << lr.logical_crossbars
       << ", \"adc_instances\": " << lr.adc_instances
       << ", \"tiles\": " << lr.tiles
       << ", \"mvm_invocations\": " << lr.mvm_invocations
       << ", \"utilization\": " << f(lr.utilization) << ", \"energy\": ";
    write_energy_json(os, lr.energy);
    os << ", \"latency_ns\": " << f(lr.latency_ns)
       << ", \"fault_vulnerability\": " << f(lr.fault_vulnerability) << '}';
  }
  os << "\n  ],";
  // Chain-shaped networks have no non-mappable graph ops; omitting the
  // empty array keeps their reports byte-identical to pre-graph builds.
  if (!report.graph_ops.empty()) {
    os << "\n  \"graph_ops\": [";
    for (std::size_t k = 0; k < report.graph_ops.size(); ++k) {
      const reram::GraphOpReport& g = report.graph_ops[k];
      os << (k == 0 ? "\n" : ",\n") << "    {\"node\": " << g.node
         << ", \"op\": \"" << g.op << "\", \"elements\": " << g.elements
         << ", \"bytes_moved\": " << g.bytes_moved << ", \"energy\": ";
      write_energy_json(os, g.energy);
      os << ", \"latency_ns\": " << f(g.latency_ns) << '}';
    }
    os << "\n  ],";
  }
  os << "\n  \"energy\": ";
  write_energy_json(os, report.energy);
  os << ",\n  \"area\": {\"crossbar_um2\": " << f(report.area.crossbar_um2)
     << ", \"adc_um2\": " << f(report.area.adc_um2)
     << ", \"dac_um2\": " << f(report.area.dac_um2)
     << ", \"shift_add_um2\": " << f(report.area.shift_add_um2)
     << ", \"tile_overhead_um2\": " << f(report.area.tile_overhead_um2)
     << "},\n  \"latency_ns\": " << f(report.latency_ns)
     << ",\n  \"utilization\": " << f(report.utilization)
     << ",\n  \"occupied_tiles\": " << report.occupied_tiles
     << ",\n  \"empty_crossbars\": " << report.empty_crossbars
     << ",\n  \"fault_vulnerability\": " << f(report.fault_vulnerability)
     << ",\n  \"rue\": " << f(report.rue()) << "\n}\n";
}

}  // namespace autohet::report
