#include "report/serialize.hpp"

#include <ostream>

#include "report/table.hpp"

namespace autohet::report {

void write_network_report_csv(std::ostream& os,
                              const reram::NetworkReport& report) {
  Table table({"layer", "shape", "logical_crossbars", "adc_instances",
               "tiles", "mvms", "utilization", "adc_nj", "dac_nj", "cell_nj",
               "shift_add_nj", "buffer_nj", "total_nj", "latency_ns"});
  for (std::size_t k = 0; k < report.layers.size(); ++k) {
    const auto& lr = report.layers[k];
    table.add_row({std::to_string(k + 1), lr.shape.name(),
                   std::to_string(lr.logical_crossbars),
                   std::to_string(lr.adc_instances),
                   std::to_string(lr.tiles),
                   std::to_string(lr.mvm_invocations),
                   format_fixed(lr.utilization, 6),
                   format_sci(lr.energy.adc_nj, 6),
                   format_sci(lr.energy.dac_nj, 6),
                   format_sci(lr.energy.cell_nj, 6),
                   format_sci(lr.energy.shift_add_nj, 6),
                   format_sci(lr.energy.buffer_nj, 6),
                   format_sci(lr.energy.total_nj(), 6),
                   format_sci(lr.latency_ns, 6)});
  }
  table.add_row({"TOTAL", "", "", "", std::to_string(report.occupied_tiles),
                 "", format_fixed(report.utilization, 6),
                 format_sci(report.energy.adc_nj, 6),
                 format_sci(report.energy.dac_nj, 6),
                 format_sci(report.energy.cell_nj, 6),
                 format_sci(report.energy.shift_add_nj, 6),
                 format_sci(report.energy.buffer_nj, 6),
                 format_sci(report.energy.total_nj(), 6),
                 format_sci(report.latency_ns, 6)});
  table.print_csv(os);
}

void write_summary_csv(std::ostream& os, const std::string& name,
                       const reram::NetworkReport& report, bool with_header) {
  if (with_header) {
    os << "name,utilization,energy_nj,rue,area_um2,latency_ns,"
          "occupied_tiles,empty_crossbars\n";
  }
  os << name << ',' << format_fixed(report.utilization, 6) << ','
     << format_sci(report.energy.total_nj(), 6) << ','
     << format_sci(report.rue(), 6) << ','
     << format_sci(report.area.total_um2(), 6) << ','
     << format_sci(report.latency_ns, 6) << ',' << report.occupied_tiles
     << ',' << report.empty_crossbars << '\n';
}

}  // namespace autohet::report
