// Dense tensor operations for forward inference.
//
// Layout conventions:
//   * activations: CHW  (channels, height, width), rank-3
//   * conv weights: [Cout, Cin, kh, kw], rank-4
//   * fc weights:   [out, in], rank-2
//
// conv2d is implemented as im2col followed by GEMM, which mirrors exactly how
// a ReRAM crossbar consumes a convolution: each im2col column is the input
// vector applied to the wordlines for one output position, and each unfolded
// kernel is one bitline column (paper Fig. 2 / Fig. 7).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace autohet::tensor {

/// C = A(BxK) * B(KxN); shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// im2col for CHW input: output is [Cin*kh*kw, out_h*out_w] where each
/// column holds the receptive field for one output position.
Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad);

/// 2-D convolution (CHW input, [Cout,Cin,kh,kw] weight) via im2col + GEMM.
Tensor conv2d(const Tensor& input, const Tensor& weight, std::int64_t stride,
              std::int64_t pad);

/// 2-D max pooling over a CHW input.
Tensor maxpool2d(const Tensor& input, std::int64_t window, std::int64_t stride);

/// 2-D average pooling over a CHW input.
Tensor avgpool2d(const Tensor& input, std::int64_t window, std::int64_t stride);

/// Fully connected: weight [out, in] times flattened input.
Tensor fully_connected(const Tensor& input, const Tensor& weight);

/// Elementwise max(0, x), in place.
void relu_inplace(Tensor& t);

/// a += b (same shape).
void add_inplace(Tensor& a, const Tensor& b);

/// Index of the largest element.
std::int64_t argmax(const Tensor& t);

/// Largest absolute elementwise difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace autohet::tensor
