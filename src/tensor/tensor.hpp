// Minimal dense tensor for the DNN reference path and functional simulation.
//
// Row-major float storage with explicit shapes. This is deliberately a small
// subset of a real tensor library: the reproduction only needs forward
// inference (GEMM, im2col convolution, pooling, elementwise) to validate that
// the simulated crossbar datapath computes the same results as a float
// reference.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace autohet::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. All dims must be positive.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  const std::vector<std::int64_t>& shape() const noexcept { return shape_; }
  std::int64_t dim(std::size_t axis) const;
  std::size_t rank() const noexcept { return shape_.size(); }
  std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::vector<float>& storage() noexcept { return data_; }
  const std::vector<float>& storage() const noexcept { return data_; }

  float& operator[](std::int64_t flat) { return data_[static_cast<std::size_t>(flat)]; }
  float operator[](std::int64_t flat) const {
    return data_[static_cast<std::size_t>(flat)];
  }

  /// Bounds-checked element access for rank-2 .. rank-4 tensors.
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const;

  /// Reinterprets the shape; the element count must match.
  Tensor reshaped(std::vector<std::int64_t> shape) const;

  void fill(float value);
  /// Fills with uniform values in [lo, hi) from the provided generator.
  void fill_uniform(common::Rng& rng, float lo, float hi);
  /// Fills with N(mean, stddev) values.
  void fill_normal(common::Rng& rng, float mean, float stddev);

  float min() const;
  float max() const;
  /// Largest absolute value; 0 for an empty tensor.
  float abs_max() const;

  std::string shape_string() const;

 private:
  std::int64_t flat_index(std::int64_t i, std::int64_t j) const;
  std::int64_t flat_index(std::int64_t i, std::int64_t j, std::int64_t k) const;
  std::int64_t flat_index(std::int64_t i, std::int64_t j, std::int64_t k,
                          std::int64_t l) const;

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace autohet::tensor
