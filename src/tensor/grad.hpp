// Backward (gradient) counterparts of the forward ops in tensor/ops.hpp,
// plus softmax cross-entropy. Used by nn::Trainer to train the reference
// models on synthetic data, so that deployment examples exercise the fabric
// with *trained* weights instead of random ones (DESIGN.md §1).
//
// All functions use the same layout conventions as ops.hpp (CHW
// activations, [Cout,Cin,kh,kw] conv weights, [out,in] fc weights) and are
// validated against finite differences in tests/test_grad.cpp.
#pragma once

#include <cstdint>
#include <utility>

#include "tensor/tensor.hpp"

namespace autohet::tensor {

struct ConvGrads {
  Tensor grad_input;   ///< same shape as the forward input
  Tensor grad_weight;  ///< same shape as the weight
};

/// Gradients of conv2d(input, weight, stride, pad) given dL/d(output).
ConvGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                          const Tensor& grad_output, std::int64_t stride,
                          std::int64_t pad);

struct FcGrads {
  Tensor grad_input;   ///< flattened input shape [in]
  Tensor grad_weight;  ///< [out, in]
};

/// Gradients of fully_connected(input, weight) given dL/d(output).
FcGrads fully_connected_backward(const Tensor& input, const Tensor& weight,
                                 const Tensor& grad_output);

/// Gradient of maxpool2d: routes each output gradient to the argmax cell of
/// its window (ties: the first maximum in scan order, matching the forward
/// implementation's comparison order).
Tensor maxpool2d_backward(const Tensor& input, const Tensor& grad_output,
                          std::int64_t window, std::int64_t stride);

/// Gradient of avgpool2d: spreads each output gradient uniformly.
Tensor avgpool2d_backward(const Tensor& input, const Tensor& grad_output,
                          std::int64_t window, std::int64_t stride);

/// In-place ReLU gradient through the *post-activation* values y:
/// grad_i <- grad_i * (y_i > 0).
void relu_backward_inplace(const Tensor& post_activation, Tensor& grad);

/// Softmax cross-entropy against an integer label. Returns the scalar loss
/// and dL/d(logits).
std::pair<float, Tensor> softmax_cross_entropy(const Tensor& logits,
                                               std::int64_t label);

}  // namespace autohet::tensor
