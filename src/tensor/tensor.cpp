#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace autohet::tensor {

namespace {
std::int64_t checked_numel(const std::vector<std::int64_t>& shape) {
  AUTOHET_CHECK(!shape.empty(), "tensor shape must be non-empty");
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    AUTOHET_CHECK(d > 0, "tensor dims must be positive");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(checked_numel(shape_)), 0.0f) {}

std::int64_t Tensor::dim(std::size_t axis) const {
  AUTOHET_CHECK(axis < shape_.size(), "axis out of range");
  return shape_[axis];
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j) const {
  AUTOHET_CHECK(rank() == 2, "expected rank-2 tensor");
  AUTOHET_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                "index out of range");
  return i * shape_[1] + j;
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j,
                                std::int64_t k) const {
  AUTOHET_CHECK(rank() == 3, "expected rank-3 tensor");
  AUTOHET_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                    k < shape_[2],
                "index out of range");
  return (i * shape_[1] + j) * shape_[2] + k;
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j, std::int64_t k,
                                std::int64_t l) const {
  AUTOHET_CHECK(rank() == 4, "expected rank-4 tensor");
  AUTOHET_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                    k < shape_[2] && l >= 0 && l < shape_[3],
                "index out of range");
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}
float Tensor::at(std::int64_t i, std::int64_t j) const {
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
                  std::int64_t l) {
  return data_[static_cast<std::size_t>(flat_index(i, j, k, l))];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l) const {
  return data_[static_cast<std::size_t>(flat_index(i, j, k, l))];
}

Tensor Tensor::reshaped(std::vector<std::int64_t> shape) const {
  Tensor out;
  const std::int64_t n = checked_numel(shape);
  AUTOHET_CHECK(n == numel(), "reshape must preserve element count");
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::fill_uniform(common::Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(common::Rng& rng, float mean, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

float Tensor::min() const {
  AUTOHET_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  AUTOHET_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_string() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

}  // namespace autohet::tensor
