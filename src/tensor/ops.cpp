#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace autohet::tensor {

Tensor matmul(const Tensor& a, const Tensor& b) {
  AUTOHET_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  AUTOHET_CHECK(b.dim(0) == k, "matmul inner dims must match");
  Tensor c({m, n});
  // i-k-j loop order keeps the innermost accesses contiguous for both b and c.
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad) {
  AUTOHET_CHECK(input.rank() == 3, "im2col expects CHW input");
  AUTOHET_CHECK(kh > 0 && kw > 0 && stride > 0 && pad >= 0,
                "invalid conv geometry");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t out_h = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t out_w = (w + 2 * pad - kw) / stride + 1;
  AUTOHET_CHECK(out_h > 0 && out_w > 0, "conv output collapses to zero");
  Tensor cols({c * kh * kw, out_h * out_w});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        const std::int64_t row = (ch * kh + ki) * kw + kj;
        for (std::int64_t oi = 0; oi < out_h; ++oi) {
          const std::int64_t ii = oi * stride + ki - pad;
          for (std::int64_t oj = 0; oj < out_w; ++oj) {
            const std::int64_t jj = oj * stride + kj - pad;
            float v = 0.0f;
            if (ii >= 0 && ii < h && jj >= 0 && jj < w) v = input.at(ch, ii, jj);
            cols.at(row, oi * out_w + oj) = v;
          }
        }
      }
    }
  }
  return cols;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, std::int64_t stride,
              std::int64_t pad) {
  AUTOHET_CHECK(input.rank() == 3, "conv2d expects CHW input");
  AUTOHET_CHECK(weight.rank() == 4, "conv2d expects [Cout,Cin,kh,kw] weight");
  const std::int64_t cin = input.dim(0);
  AUTOHET_CHECK(weight.dim(1) == cin, "conv2d channel mismatch");
  const std::int64_t cout = weight.dim(0);
  const std::int64_t kh = weight.dim(2), kw = weight.dim(3);
  const std::int64_t h = input.dim(1), w = input.dim(2);
  const std::int64_t out_h = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t out_w = (w + 2 * pad - kw) / stride + 1;

  const Tensor cols = im2col(input, kh, kw, stride, pad);
  const Tensor wmat = weight.reshaped({cout, cin * kh * kw});
  Tensor out2d = matmul(wmat, cols);
  return out2d.reshaped({cout, out_h, out_w});
}

namespace {
template <typename Reduce>
Tensor pool2d(const Tensor& input, std::int64_t window, std::int64_t stride,
              float init, Reduce reduce, bool average) {
  AUTOHET_CHECK(input.rank() == 3, "pool expects CHW input");
  AUTOHET_CHECK(window > 0 && stride > 0, "invalid pool geometry");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t out_h = (h - window) / stride + 1;
  const std::int64_t out_w = (w - window) / stride + 1;
  AUTOHET_CHECK(out_h > 0 && out_w > 0, "pool output collapses to zero");
  Tensor out({c, out_h, out_w});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t oi = 0; oi < out_h; ++oi) {
      for (std::int64_t oj = 0; oj < out_w; ++oj) {
        float acc = init;
        for (std::int64_t ki = 0; ki < window; ++ki) {
          for (std::int64_t kj = 0; kj < window; ++kj) {
            acc = reduce(acc, input.at(ch, oi * stride + ki, oj * stride + kj));
          }
        }
        if (average) acc /= static_cast<float>(window * window);
        out.at(ch, oi, oj) = acc;
      }
    }
  }
  return out;
}
}  // namespace

Tensor maxpool2d(const Tensor& input, std::int64_t window,
                 std::int64_t stride) {
  return pool2d(
      input, window, stride, -std::numeric_limits<float>::infinity(),
      [](float a, float b) { return std::max(a, b); }, /*average=*/false);
}

Tensor avgpool2d(const Tensor& input, std::int64_t window,
                 std::int64_t stride) {
  return pool2d(
      input, window, stride, 0.0f, [](float a, float b) { return a + b; },
      /*average=*/true);
}

Tensor fully_connected(const Tensor& input, const Tensor& weight) {
  AUTOHET_CHECK(weight.rank() == 2, "fc expects rank-2 weight");
  const std::int64_t in = weight.dim(1);
  AUTOHET_CHECK(input.numel() == in, "fc input size mismatch");
  const Tensor x = input.reshaped({in, 1});
  Tensor y = matmul(weight, x);
  return y.reshaped({weight.dim(0)});
}

void relu_inplace(Tensor& t) {
  for (auto& v : t.storage()) v = std::max(v, 0.0f);
}

void add_inplace(Tensor& a, const Tensor& b) {
  AUTOHET_CHECK(a.shape() == b.shape(), "add shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

std::int64_t argmax(const Tensor& t) {
  AUTOHET_CHECK(t.numel() > 0, "argmax of empty tensor");
  const auto& s = t.storage();
  return static_cast<std::int64_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  AUTOHET_CHECK(a.shape() == b.shape(), "diff shape mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace autohet::tensor
