#include "tensor/grad.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace autohet::tensor {

ConvGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                          const Tensor& grad_output, std::int64_t stride,
                          std::int64_t pad) {
  AUTOHET_CHECK(input.rank() == 3 && weight.rank() == 4 &&
                    grad_output.rank() == 3,
                "conv2d_backward shape ranks");
  const std::int64_t cin = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t cout = weight.dim(0), kh = weight.dim(2),
                     kw = weight.dim(3);
  AUTOHET_CHECK(weight.dim(1) == cin, "conv2d_backward channel mismatch");
  const std::int64_t oh = grad_output.dim(1), ow = grad_output.dim(2);
  AUTOHET_CHECK(grad_output.dim(0) == cout &&
                    oh == (h + 2 * pad - kh) / stride + 1 &&
                    ow == (w + 2 * pad - kw) / stride + 1,
                "conv2d_backward grad_output geometry mismatch");

  ConvGrads grads;
  grads.grad_input = Tensor({cin, h, w});
  grads.grad_weight = Tensor({cout, cin, kh, kw});
  for (std::int64_t co = 0; co < cout; ++co) {
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      for (std::int64_t oj = 0; oj < ow; ++oj) {
        const float go = grad_output.at(co, oi, oj);
        if (go == 0.0f) continue;
        for (std::int64_t ci = 0; ci < cin; ++ci) {
          for (std::int64_t ki = 0; ki < kh; ++ki) {
            const std::int64_t ii = oi * stride + ki - pad;
            if (ii < 0 || ii >= h) continue;
            for (std::int64_t kj = 0; kj < kw; ++kj) {
              const std::int64_t jj = oj * stride + kj - pad;
              if (jj < 0 || jj >= w) continue;
              grads.grad_weight.at(co, ci, ki, kj) +=
                  go * input.at(ci, ii, jj);
              grads.grad_input.at(ci, ii, jj) +=
                  go * weight.at(co, ci, ki, kj);
            }
          }
        }
      }
    }
  }
  return grads;
}

FcGrads fully_connected_backward(const Tensor& input, const Tensor& weight,
                                 const Tensor& grad_output) {
  AUTOHET_CHECK(weight.rank() == 2, "fc_backward expects rank-2 weight");
  const std::int64_t out = weight.dim(0), in = weight.dim(1);
  AUTOHET_CHECK(input.numel() == in, "fc_backward input size mismatch");
  AUTOHET_CHECK(grad_output.numel() == out,
                "fc_backward grad_output size mismatch");
  FcGrads grads;
  grads.grad_input = Tensor({in});
  grads.grad_weight = Tensor({out, in});
  for (std::int64_t o = 0; o < out; ++o) {
    const float go = grad_output[o];
    if (go == 0.0f) continue;
    for (std::int64_t i = 0; i < in; ++i) {
      grads.grad_weight.at(o, i) = go * input[i];
      grads.grad_input[i] += go * weight.at(o, i);
    }
  }
  return grads;
}

Tensor maxpool2d_backward(const Tensor& input, const Tensor& grad_output,
                          std::int64_t window, std::int64_t stride) {
  AUTOHET_CHECK(input.rank() == 3 && grad_output.rank() == 3,
                "maxpool_backward expects CHW tensors");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = grad_output.dim(1), ow = grad_output.dim(2);
  AUTOHET_CHECK(grad_output.dim(0) == c && oh == (h - window) / stride + 1 &&
                    ow == (w - window) / stride + 1,
                "maxpool_backward geometry mismatch");
  Tensor grad({c, h, w});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      for (std::int64_t oj = 0; oj < ow; ++oj) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t bi = 0, bj = 0;
        for (std::int64_t ki = 0; ki < window; ++ki) {
          for (std::int64_t kj = 0; kj < window; ++kj) {
            const float v =
                input.at(ch, oi * stride + ki, oj * stride + kj);
            if (v > best) {
              best = v;
              bi = oi * stride + ki;
              bj = oj * stride + kj;
            }
          }
        }
        grad.at(ch, bi, bj) += grad_output.at(ch, oi, oj);
      }
    }
  }
  return grad;
}

Tensor avgpool2d_backward(const Tensor& input, const Tensor& grad_output,
                          std::int64_t window, std::int64_t stride) {
  AUTOHET_CHECK(input.rank() == 3 && grad_output.rank() == 3,
                "avgpool_backward expects CHW tensors");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = grad_output.dim(1), ow = grad_output.dim(2);
  AUTOHET_CHECK(grad_output.dim(0) == c && oh == (h - window) / stride + 1 &&
                    ow == (w - window) / stride + 1,
                "avgpool_backward geometry mismatch");
  Tensor grad({c, h, w});
  const float scale = 1.0f / static_cast<float>(window * window);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      for (std::int64_t oj = 0; oj < ow; ++oj) {
        const float g = grad_output.at(ch, oi, oj) * scale;
        for (std::int64_t ki = 0; ki < window; ++ki) {
          for (std::int64_t kj = 0; kj < window; ++kj) {
            grad.at(ch, oi * stride + ki, oj * stride + kj) += g;
          }
        }
      }
    }
  }
  return grad;
}

void relu_backward_inplace(const Tensor& post_activation, Tensor& grad) {
  AUTOHET_CHECK(post_activation.shape() == grad.shape(),
                "relu_backward shape mismatch");
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    if (post_activation[i] <= 0.0f) grad[i] = 0.0f;
  }
}

std::pair<float, Tensor> softmax_cross_entropy(const Tensor& logits,
                                               std::int64_t label) {
  AUTOHET_CHECK(label >= 0 && label < logits.numel(),
                "label out of range");
  // Numerically stable softmax.
  const float max_logit = logits.max();
  double denom = 0.0;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    denom += std::exp(static_cast<double>(logits[i] - max_logit));
  }
  Tensor grad(logits.shape());
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const double p =
        std::exp(static_cast<double>(logits[i] - max_logit)) / denom;
    grad[i] = static_cast<float>(p) - (i == label ? 1.0f : 0.0f);
  }
  const double log_p_label =
      static_cast<double>(logits[label] - max_logit) - std::log(denom);
  return {static_cast<float>(-log_p_label), std::move(grad)};
}

}  // namespace autohet::tensor
