// Deep Deterministic Policy Gradient (Silver et al. 2014 / Lillicrap et al.)
// for continuous 1-D actions in [0, 1].
//
// The paper constructs its RL agent "based on the DDPG algorithm, which
// includes paired actor and critic networks" (§3.2). The actor maps the
// 10-dim layer state to an action; the critic estimates Q(s, a). AutoHet
// quantizes the continuous action to a crossbar-candidate index (HAQ-style),
// which keeps the action space continuous for DDPG while the hardware choice
// stays discrete.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "rl/adam.hpp"
#include "rl/mlp.hpp"
#include "rl/noise.hpp"
#include "rl/prioritized_replay.hpp"
#include "rl/replay_buffer.hpp"

namespace autohet::rl {

enum class NoiseKind {
  kGaussianDecay,      ///< N(0, sigma) with per-episode multiplicative decay
  kOrnsteinUhlenbeck,  ///< temporally correlated OU process (classic DDPG)
};

struct DdpgConfig {
  int state_dim = 10;
  std::vector<int> actor_hidden = {64, 64};
  std::vector<int> critic_hidden = {64, 64};
  double actor_lr = 1e-4;
  double critic_lr = 1e-3;
  double gamma = 0.99;  ///< discount across layers within an episode
  double tau = 0.01;    ///< target-network soft-update rate
  std::size_t replay_capacity = 20000;
  std::size_t batch_size = 64;
  NoiseKind noise_kind = NoiseKind::kGaussianDecay;
  double ou_theta = 0.15;  ///< OU mean-reversion rate
  double ou_sigma = 0.2;   ///< OU diffusion
  /// Prioritized experience replay (Schaul et al.) instead of the uniform
  /// pool; per_* are the usual alpha/beta/epsilon knobs.
  bool prioritized_replay = false;
  double per_alpha = 0.6;
  double per_beta = 0.4;
  double per_epsilon = 1e-3;
};

class DdpgAgent {
 public:
  DdpgAgent(DdpgConfig config, common::Rng rng);

  /// Deterministic policy action in [0, 1].
  double act(std::span<const double> state) const;
  /// Policy action plus exploration noise, clamped to [0, 1].
  double act_with_noise(std::span<const double> state);

  /// Decays the exploration noise (call once per episode). For OU noise
  /// this resets the process state instead (episodes are independent).
  void decay_noise();
  double noise_sigma() const noexcept;

  void remember(Transition t);
  std::size_t replay_size() const noexcept;

  /// One minibatch update of critic and actor plus target soft updates.
  /// No-op until the replay buffer holds at least one batch.
  /// Returns the critic's minibatch MSE loss (0.0 when skipped).
  double update();

  /// Critic Q-value for diagnostics/tests.
  double q_value(std::span<const double> state, double action) const;

  const DdpgConfig& config() const noexcept { return config_; }

 private:
  static std::vector<int> layer_sizes(int in, const std::vector<int>& hidden,
                                      int out);

  DdpgConfig config_;
  common::Rng rng_;
  Mlp actor_;
  Mlp critic_;
  Mlp actor_target_;
  Mlp critic_target_;
  Adam actor_opt_;
  Adam critic_opt_;
  ReplayBuffer replay_;
  PrioritizedReplayBuffer prioritized_replay_;
  DecayingGaussian noise_;
  OrnsteinUhlenbeck ou_noise_;

  // update() scratch — sized on first use, reused every minibatch so the
  // hot path allocates nothing in steady state.
  Mlp::BatchCache actor_target_cache_;
  Mlp::BatchCache critic_target_cache_;
  Mlp::BatchCache critic_cache_;
  Mlp::BatchCache actor_cache_;
  Mlp::BatchCache critic_q_cache_;
  std::vector<double> next_states_;
  std::vector<double> states_;
  std::vector<double> sa_;
  std::vector<double> delta_;
  std::vector<double> dq_dsa_;
};

}  // namespace autohet::rl
