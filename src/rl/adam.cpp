#include "rl/adam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace autohet::rl {

Adam::Adam(std::size_t param_count, double lr, double beta1, double beta2,
           double epsilon)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      m_(param_count, 0.0),
      v_(param_count, 0.0) {
  AUTOHET_CHECK(lr > 0.0, "learning rate must be positive");
  AUTOHET_CHECK(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0,
                "betas must be in [0, 1)");
}

void Adam::step(std::span<double> params, std::span<const double> grads) {
  AUTOHET_CHECK(params.size() == m_.size() && grads.size() == m_.size(),
                "Adam size mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < m_.size(); ++i) {
    const double g = grads[i];
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

}  // namespace autohet::rl
