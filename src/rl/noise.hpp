// Exploration noise processes for DDPG.
#pragma once

#include "common/rng.hpp"

namespace autohet::rl {

/// Ornstein-Uhlenbeck process (the classic DDPG exploration noise):
/// dx = theta * (mu - x) dt + sigma dW.
class OrnsteinUhlenbeck {
 public:
  OrnsteinUhlenbeck(double theta = 0.15, double sigma = 0.2, double mu = 0.0)
      : theta_(theta), sigma_(sigma), mu_(mu), x_(mu) {}

  void reset() noexcept { x_ = mu_; }
  double sample(common::Rng& rng) noexcept {
    x_ += theta_ * (mu_ - x_) + sigma_ * rng.normal();
    return x_;
  }
  void set_sigma(double sigma) noexcept { sigma_ = sigma; }
  double sigma() const noexcept { return sigma_; }

 private:
  double theta_;
  double sigma_;
  double mu_;
  double x_;
};

/// Gaussian noise with multiplicative per-episode decay; simpler alternative
/// used by HAQ-style searches.
class DecayingGaussian {
 public:
  explicit DecayingGaussian(double sigma = 0.5, double decay = 0.99,
                            double min_sigma = 0.02)
      : sigma_(sigma), decay_(decay), min_sigma_(min_sigma) {}

  double sample(common::Rng& rng) noexcept { return sigma_ * rng.normal(); }
  void decay() noexcept {
    sigma_ *= decay_;
    if (sigma_ < min_sigma_) sigma_ = min_sigma_;
  }
  double sigma() const noexcept { return sigma_; }

 private:
  double sigma_;
  double decay_;
  double min_sigma_;
};

}  // namespace autohet::rl
