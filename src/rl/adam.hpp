// Adam optimizer over a flat parameter array.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autohet::rl {

class Adam {
 public:
  explicit Adam(std::size_t param_count, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  /// Applies one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  /// `params` and `grads` must both have the configured size.
  void step(std::span<double> params, std::span<const double> grads);

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }
  long long steps_taken() const noexcept { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  long long t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace autohet::rl
