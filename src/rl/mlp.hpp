// Dense multi-layer perceptron with manual backpropagation.
//
// Small and allocation-friendly: parameters live in one flat vector so the
// Adam optimizer and DDPG's target-network soft updates operate on plain
// arrays. Double precision throughout — the networks are tiny (the paper's
// actor/critic observe a 10-dim state) and stability matters more than
// speed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace autohet::rl {

enum class Activation { kLinear, kRelu, kTanh, kSigmoid };

double apply_activation(Activation a, double x) noexcept;
/// Derivative expressed in terms of the *activated* output y = f(x).
double activation_grad_from_output(Activation a, double y) noexcept;

class Mlp {
 public:
  /// `sizes` = {in, h1, ..., out}; `activations` has sizes.size()-1 entries,
  /// one per affine layer. Weights are Xavier-initialized from `rng`.
  Mlp(std::vector<int> sizes, std::vector<Activation> activations,
      common::Rng& rng);

  int input_size() const noexcept { return sizes_.front(); }
  int output_size() const noexcept { return sizes_.back(); }
  std::size_t param_count() const noexcept { return params_.size(); }

  std::vector<double>& params() noexcept { return params_; }
  const std::vector<double>& params() const noexcept { return params_; }
  std::vector<double>& grads() noexcept { return grads_; }

  /// Plain forward pass.
  std::vector<double> forward(std::span<const double> input) const;

  /// Activations cache for backward(). post[0] is the input itself;
  /// post[l] is the output of affine layer l-1 after its activation.
  struct Cache {
    std::vector<std::vector<double>> post;
  };
  std::vector<double> forward(std::span<const double> input,
                              Cache& cache) const;

  /// Accumulates parameter gradients for dL/d(output) = `grad_output` and
  /// returns dL/d(input). Call zero_grads() between minibatches.
  std::vector<double> backward(const Cache& cache,
                               std::span<const double> grad_output);

  // ---- batched kernels (the DDPG update hot path) ----
  //
  // Row-major batch×width activations. The arithmetic is element-for-
  // element the same as the per-sample path — each output neuron's dot
  // product accumulates over inputs in the same order, and parameter
  // gradients accumulate over the batch in sample order — but the loops
  // are shaped as contiguous saxpy/broadcast sweeps (weights transposed
  // into scratch) so the compiler can vectorize them without reassociating
  // any floating-point reduction. All scratch lives in the caller's
  // BatchCache; steady-state calls allocate nothing.

  struct BatchCache {
    std::size_t batch = 0;
    /// post[0] is the input batch; post[l] the activated output of affine
    /// layer l-1. Flattened batch × sizes_[l], row-major.
    std::vector<std::vector<double>> post;
    std::vector<double> wt;          ///< in×out transposed-weight scratch
    std::vector<double> delta;       ///< backprop scratch
    std::vector<double> next_delta;  ///< backprop scratch
  };

  /// Forward for `batch` rows (`x` is batch × input_size, row-major).
  /// Returns the output batch (batch × output_size), owned by `cache`.
  const std::vector<double>& forward_batch(const double* x, std::size_t batch,
                                           BatchCache& cache) const;

  /// Batched backward: `grad_output` is batch × output_size. Accumulates
  /// parameter gradients (sample-major, matching repeated per-sample
  /// backward calls) and, when `grad_input` is non-null, writes
  /// dL/d(input) as batch × input_size. Pass `accumulate_param_grads =
  /// false` when only dL/d(input) is wanted (DDPG's actor pass
  /// differentiates the critic w.r.t. the action, not its weights).
  void backward_batch(BatchCache& cache, std::span<const double> grad_output,
                      std::vector<double>* grad_input,
                      bool accumulate_param_grads = true);

  void zero_grads();

  /// θ ← τ·θ_src + (1-τ)·θ (DDPG target-network soft update).
  void soft_update_from(const Mlp& src, double tau);
  void copy_params_from(const Mlp& src);

 private:
  // Parameter layout per layer l: weights W_l (out×in, row-major) followed
  // by biases b_l (out).
  std::size_t weight_offset(std::size_t layer) const noexcept {
    return offsets_[layer];
  }
  std::size_t bias_offset(std::size_t layer) const noexcept {
    return offsets_[layer] +
           static_cast<std::size_t>(sizes_[layer + 1] * sizes_[layer]);
  }

  std::vector<int> sizes_;
  std::vector<Activation> activations_;
  std::vector<std::size_t> offsets_;  // start of each layer's block
  std::vector<double> params_;
  std::vector<double> grads_;
};

}  // namespace autohet::rl
