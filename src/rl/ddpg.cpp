#include "rl/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::rl {

std::vector<int> DdpgAgent::layer_sizes(int in, const std::vector<int>& hidden,
                                        int out) {
  std::vector<int> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

namespace {
std::vector<Activation> hidden_relu_then(Activation last, std::size_t hidden) {
  std::vector<Activation> acts(hidden, Activation::kRelu);
  acts.push_back(last);
  return acts;
}
}  // namespace

DdpgAgent::DdpgAgent(DdpgConfig config, common::Rng rng)
    : config_(config),
      rng_(rng),
      actor_(layer_sizes(config.state_dim, config.actor_hidden, 1),
             hidden_relu_then(Activation::kSigmoid,
                              config.actor_hidden.size()),
             rng_),
      critic_(layer_sizes(config.state_dim + 1, config.critic_hidden, 1),
              hidden_relu_then(Activation::kLinear,
                               config.critic_hidden.size()),
              rng_),
      actor_target_(layer_sizes(config.state_dim, config.actor_hidden, 1),
                    hidden_relu_then(Activation::kSigmoid,
                                     config.actor_hidden.size()),
                    rng_),
      critic_target_(layer_sizes(config.state_dim + 1, config.critic_hidden, 1),
                     hidden_relu_then(Activation::kLinear,
                                      config.critic_hidden.size()),
                     rng_),
      actor_opt_(actor_.param_count(), config.actor_lr),
      critic_opt_(critic_.param_count(), config.critic_lr),
      replay_(config.replay_capacity),
      prioritized_replay_(config.replay_capacity, config.per_alpha,
                          config.per_epsilon),
      ou_noise_(config.ou_theta, config.ou_sigma) {
  AUTOHET_CHECK(config.state_dim > 0, "state_dim must be positive");
  AUTOHET_CHECK(config.batch_size > 0, "batch_size must be positive");
  AUTOHET_CHECK(config.gamma >= 0.0 && config.gamma <= 1.0,
                "gamma must be in [0, 1]");
  AUTOHET_CHECK(config.tau > 0.0 && config.tau <= 1.0, "tau must be in (0, 1]");
  actor_target_.copy_params_from(actor_);
  critic_target_.copy_params_from(critic_);
}

double DdpgAgent::act(std::span<const double> state) const {
  return actor_.forward(state)[0];
}

double DdpgAgent::act_with_noise(std::span<const double> state) {
  const double noise = (config_.noise_kind == NoiseKind::kOrnsteinUhlenbeck)
                           ? ou_noise_.sample(rng_)
                           : noise_.sample(rng_);
  return std::clamp(act(state) + noise, 0.0, 1.0);
}

void DdpgAgent::decay_noise() {
  if (config_.noise_kind == NoiseKind::kOrnsteinUhlenbeck) {
    ou_noise_.reset();
  } else {
    noise_.decay();
  }
}

double DdpgAgent::noise_sigma() const noexcept {
  return (config_.noise_kind == NoiseKind::kOrnsteinUhlenbeck)
             ? config_.ou_sigma
             : noise_.sigma();
}

double DdpgAgent::q_value(std::span<const double> state, double action) const {
  std::vector<double> sa(state.begin(), state.end());
  sa.push_back(action);
  return critic_.forward(sa)[0];
}

void DdpgAgent::remember(Transition t) {
  if (config_.prioritized_replay) {
    prioritized_replay_.add(std::move(t));
  } else {
    replay_.add(std::move(t));
  }
}

std::size_t DdpgAgent::replay_size() const noexcept {
  return config_.prioritized_replay ? prioritized_replay_.size()
                                    : replay_.size();
}

double DdpgAgent::update() {
  if (replay_size() < config_.batch_size) return 0.0;

  // Assemble the minibatch: uniform pool, or prioritized pool with
  // importance-sampling weights and fresh-TD-error priority updates.
  std::vector<const Transition*> batch;
  std::vector<double> weights;
  std::vector<std::size_t> indices;
  if (config_.prioritized_replay) {
    const auto samples =
        prioritized_replay_.sample(rng_, config_.batch_size,
                                   config_.per_beta);
    for (const auto& s : samples) {
      batch.push_back(s.transition);
      weights.push_back(s.weight);
      indices.push_back(s.index);
    }
  } else {
    batch = replay_.sample(rng_, config_.batch_size);
    weights.assign(batch.size(), 1.0);
  }
  const double inv_batch = 1.0 / static_cast<double>(batch.size());

  // ---- critic: minimize MSE(Q(s,a), r + gamma * Q'(s', mu'(s'))) ----
  critic_.zero_grads();
  double critic_loss = 0.0;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const Transition* t = batch[b];
    double target = t->reward;
    if (!t->terminal) {
      const double next_a = actor_target_.forward(t->next_state)[0];
      std::vector<double> sa(t->next_state);
      sa.push_back(next_a);
      target += config_.gamma * critic_target_.forward(sa)[0];
    }
    std::vector<double> sa(t->state);
    sa.push_back(t->action);
    Mlp::Cache cache;
    const double q = critic_.forward(sa, cache)[0];
    const double err = q - target;
    if (config_.prioritized_replay) {
      prioritized_replay_.update_priority(indices[b], std::fabs(err));
    }
    critic_loss += weights[b] * err * err * inv_batch;
    const double grad = 2.0 * weights[b] * err * inv_batch;
    critic_.backward(cache, std::span<const double>(&grad, 1));
  }
  critic_opt_.step(critic_.params(), critic_.grads());

  // ---- actor: ascend dQ(s, mu(s))/d(theta_mu) ----
  actor_.zero_grads();
  critic_.zero_grads();  // scratch use below; cleared again next update
  for (const Transition* t : batch) {
    Mlp::Cache actor_cache;
    const double a = actor_.forward(t->state, actor_cache)[0];
    std::vector<double> sa(t->state);
    sa.push_back(a);
    Mlp::Cache critic_cache;
    critic_.forward(sa, critic_cache);
    const double one = 1.0;
    const std::vector<double> dq_dsa =
        critic_.backward(critic_cache, std::span<const double>(&one, 1));
    const double dq_da = dq_dsa.back();
    // Minimize -Q  =>  dL/da = -dQ/da.
    const double grad = -dq_da * inv_batch;
    actor_.backward(actor_cache, std::span<const double>(&grad, 1));
  }
  actor_opt_.step(actor_.params(), actor_.grads());
  critic_.zero_grads();

  // ---- target soft updates ----
  actor_target_.soft_update_from(actor_, config_.tau);
  critic_target_.soft_update_from(critic_, config_.tau);
  return critic_loss;
}

}  // namespace autohet::rl
