#include "rl/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::rl {

std::vector<int> DdpgAgent::layer_sizes(int in, const std::vector<int>& hidden,
                                        int out) {
  std::vector<int> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

namespace {
std::vector<Activation> hidden_relu_then(Activation last, std::size_t hidden) {
  std::vector<Activation> acts(hidden, Activation::kRelu);
  acts.push_back(last);
  return acts;
}
}  // namespace

DdpgAgent::DdpgAgent(DdpgConfig config, common::Rng rng)
    : config_(config),
      rng_(rng),
      actor_(layer_sizes(config.state_dim, config.actor_hidden, 1),
             hidden_relu_then(Activation::kSigmoid,
                              config.actor_hidden.size()),
             rng_),
      critic_(layer_sizes(config.state_dim + 1, config.critic_hidden, 1),
              hidden_relu_then(Activation::kLinear,
                               config.critic_hidden.size()),
              rng_),
      actor_target_(layer_sizes(config.state_dim, config.actor_hidden, 1),
                    hidden_relu_then(Activation::kSigmoid,
                                     config.actor_hidden.size()),
                    rng_),
      critic_target_(layer_sizes(config.state_dim + 1, config.critic_hidden, 1),
                     hidden_relu_then(Activation::kLinear,
                                      config.critic_hidden.size()),
                     rng_),
      actor_opt_(actor_.param_count(), config.actor_lr),
      critic_opt_(critic_.param_count(), config.critic_lr),
      replay_(config.replay_capacity),
      prioritized_replay_(config.replay_capacity, config.per_alpha,
                          config.per_epsilon),
      ou_noise_(config.ou_theta, config.ou_sigma) {
  AUTOHET_CHECK(config.state_dim > 0, "state_dim must be positive");
  AUTOHET_CHECK(config.batch_size > 0, "batch_size must be positive");
  AUTOHET_CHECK(config.gamma >= 0.0 && config.gamma <= 1.0,
                "gamma must be in [0, 1]");
  AUTOHET_CHECK(config.tau > 0.0 && config.tau <= 1.0, "tau must be in (0, 1]");
  actor_target_.copy_params_from(actor_);
  critic_target_.copy_params_from(critic_);
}

double DdpgAgent::act(std::span<const double> state) const {
  return actor_.forward(state)[0];
}

double DdpgAgent::act_with_noise(std::span<const double> state) {
  const double noise = (config_.noise_kind == NoiseKind::kOrnsteinUhlenbeck)
                           ? ou_noise_.sample(rng_)
                           : noise_.sample(rng_);
  return std::clamp(act(state) + noise, 0.0, 1.0);
}

void DdpgAgent::decay_noise() {
  if (config_.noise_kind == NoiseKind::kOrnsteinUhlenbeck) {
    ou_noise_.reset();
  } else {
    noise_.decay();
  }
}

double DdpgAgent::noise_sigma() const noexcept {
  return (config_.noise_kind == NoiseKind::kOrnsteinUhlenbeck)
             ? config_.ou_sigma
             : noise_.sigma();
}

double DdpgAgent::q_value(std::span<const double> state, double action) const {
  std::vector<double> sa(state.begin(), state.end());
  sa.push_back(action);
  return critic_.forward(sa)[0];
}

void DdpgAgent::remember(Transition t) {
  if (config_.prioritized_replay) {
    prioritized_replay_.add(std::move(t));
  } else {
    replay_.add(std::move(t));
  }
}

std::size_t DdpgAgent::replay_size() const noexcept {
  return config_.prioritized_replay ? prioritized_replay_.size()
                                    : replay_.size();
}

double DdpgAgent::update() {
  if (replay_size() < config_.batch_size) return 0.0;

  // Assemble the minibatch: uniform pool, or prioritized pool with
  // importance-sampling weights and fresh-TD-error priority updates.
  std::vector<const Transition*> batch;
  std::vector<double> weights;
  std::vector<std::size_t> indices;
  if (config_.prioritized_replay) {
    const auto samples =
        prioritized_replay_.sample(rng_, config_.batch_size,
                                   config_.per_beta);
    for (const auto& s : samples) {
      batch.push_back(s.transition);
      weights.push_back(s.weight);
      indices.push_back(s.index);
    }
  } else {
    batch = replay_.sample(rng_, config_.batch_size);
    weights.assign(batch.size(), 1.0);
  }
  const std::size_t B = batch.size();
  const double inv_batch = 1.0 / static_cast<double>(B);
  const auto S = static_cast<std::size_t>(config_.state_dim);
  const std::size_t SA = S + 1;

  // Pack the minibatch once; every network pass below runs batched through
  // the vectorized kernels (per-sample arithmetic identical to forwarding
  // each transition on its own — see Mlp::forward_batch).
  next_states_.resize(B * S);
  states_.resize(B * S);
  sa_.resize(B * SA);
  for (std::size_t b = 0; b < B; ++b) {
    const Transition* t = batch[b];
    std::copy(t->next_state.begin(), t->next_state.end(),
              next_states_.begin() + static_cast<std::ptrdiff_t>(b * S));
    std::copy(t->state.begin(), t->state.end(),
              states_.begin() + static_cast<std::ptrdiff_t>(b * S));
    std::copy(t->state.begin(), t->state.end(),
              sa_.begin() + static_cast<std::ptrdiff_t>(b * SA));
    sa_[b * SA + S] = t->action;
  }

  // ---- critic: minimize MSE(Q(s,a), r + gamma * Q'(s', mu'(s'))) ----
  // Target values for terminal transitions are computed (the forwards are
  // pure) but never consumed, exactly as if they had been skipped.
  const std::vector<double>& next_a =
      actor_target_.forward_batch(next_states_.data(), B, actor_target_cache_);
  delta_.resize(B * SA);
  for (std::size_t b = 0; b < B; ++b) {
    std::copy(next_states_.begin() + static_cast<std::ptrdiff_t>(b * S),
              next_states_.begin() + static_cast<std::ptrdiff_t>(b * S + S),
              delta_.begin() + static_cast<std::ptrdiff_t>(b * SA));
    delta_[b * SA + S] = next_a[b];
  }
  const std::vector<double>& q_next =
      critic_target_.forward_batch(delta_.data(), B, critic_target_cache_);
  const std::vector<double>& q =
      critic_.forward_batch(sa_.data(), B, critic_cache_);

  critic_.zero_grads();
  double critic_loss = 0.0;
  delta_.resize(B);
  for (std::size_t b = 0; b < B; ++b) {
    const Transition* t = batch[b];
    double target = t->reward;
    if (!t->terminal) target += config_.gamma * q_next[b];
    const double err = q[b] - target;
    if (config_.prioritized_replay) {
      prioritized_replay_.update_priority(indices[b], std::fabs(err));
    }
    critic_loss += weights[b] * err * err * inv_batch;
    delta_[b] = 2.0 * weights[b] * err * inv_batch;
  }
  critic_.backward_batch(critic_cache_, delta_, nullptr);
  critic_opt_.step(critic_.params(), critic_.grads());

  // ---- actor: ascend dQ(s, mu(s))/d(theta_mu) ----
  actor_.zero_grads();
  const std::vector<double>& a =
      actor_.forward_batch(states_.data(), B, actor_cache_);
  for (std::size_t b = 0; b < B; ++b) sa_[b * SA + S] = a[b];
  critic_.forward_batch(sa_.data(), B, critic_q_cache_);
  delta_.assign(B, 1.0);
  // Only dQ/d(state,action) is needed here, not critic weight gradients.
  critic_.backward_batch(critic_q_cache_, delta_, &dq_dsa_,
                         /*accumulate_param_grads=*/false);
  for (std::size_t b = 0; b < B; ++b) {
    // Minimize -Q  =>  dL/da = -dQ/da.
    delta_[b] = -dq_dsa_[b * SA + S] * inv_batch;
  }
  actor_.backward_batch(actor_cache_, delta_, nullptr);
  actor_opt_.step(actor_.params(), actor_.grads());

  // ---- target soft updates ----
  actor_target_.soft_update_from(actor_, config_.tau);
  critic_target_.soft_update_from(critic_, config_.tau);
  return critic_loss;
}

}  // namespace autohet::rl
