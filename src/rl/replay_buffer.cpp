#include "rl/replay_buffer.hpp"

#include "common/error.hpp"

namespace autohet::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : storage_(capacity) {
  AUTOHET_CHECK(capacity > 0, "replay capacity must be positive");
}

void ReplayBuffer::add(Transition t) {
  storage_[next_] = std::move(t);
  next_ = (next_ + 1) % storage_.size();
  if (size_ < storage_.size()) ++size_;
}

std::vector<const Transition*> ReplayBuffer::sample(common::Rng& rng,
                                                    std::size_t batch) const {
  AUTOHET_CHECK(size_ > 0, "cannot sample from an empty replay buffer");
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    out.push_back(&storage_[rng.uniform_u64(size_)]);
  }
  return out;
}

}  // namespace autohet::rl
