// Prioritized experience replay (Schaul et al.): transitions are sampled
// proportionally to |TD error|^alpha instead of uniformly, with
// importance-sampling weights correcting the induced bias. An optional
// upgrade over the paper's plain experience pool for the deep-model
// searches where informative transitions are rare.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "rl/replay_buffer.hpp"

namespace autohet::rl {

class PrioritizedReplayBuffer {
 public:
  /// `alpha` controls prioritization strength (0 = uniform).
  PrioritizedReplayBuffer(std::size_t capacity, double alpha = 0.6,
                          double epsilon = 1e-3);

  /// Adds with the current maximum priority so new transitions are seen at
  /// least once.
  void add(Transition t);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return storage_.size(); }

  struct Sample {
    const Transition* transition = nullptr;
    std::size_t index = 0;   ///< pass back to update_priority
    double weight = 1.0;     ///< normalized importance-sampling weight
  };

  /// Proportional sampling with replacement; `beta` is the IS-correction
  /// exponent (1 = full correction). Weights are normalized by the batch
  /// maximum.
  std::vector<Sample> sample(common::Rng& rng, std::size_t batch,
                             double beta) const;

  /// Sets the priority of a sampled transition from its fresh |TD error|.
  void update_priority(std::size_t index, double td_error_abs);

 private:
  std::vector<Transition> storage_;
  std::vector<double> priorities_;  ///< already raised to alpha
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  double alpha_;
  double epsilon_;
  double max_priority_ = 1.0;  ///< in p^alpha space
};

}  // namespace autohet::rl
