#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace autohet::rl {

namespace {

// Register-tiled C += A·B micro-kernel for the batched DDPG passes.
//
// Shape: C[m][n] += Σ_k A[m*sam + k*sak] · B[k*ldb + n]. The A strides cover
// the three layouts the passes need (X·Wᵀ forward, Dᵀ·X weight gradients,
// D·W input gradients) without materializing any transpose. For every C
// element the k-accumulation runs in strictly ascending k — the exact order
// of the per-sample scalar path — so results are bit-identical to calling
// forward()/backward() one sample at a time.
//
// The 4×16 accumulator tile is held in explicit vector-extension registers:
// the earlier plain-array formulation of this tile was spilled to the stack
// by GCC and ran 5x *slower* than the naive loop, while this version
// measures ~4.5x faster (store-port-bound axpy → FMA-bound tile).
#if defined(__GNUC__) || defined(__clang__)
typedef double v8df __attribute__((vector_size(64)));

inline v8df splat8(double x) noexcept {
  return v8df{x, x, x, x, x, x, x, x};
}
inline v8df load8(const double* p) noexcept {
  v8df v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void store8(double* p, v8df v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

void gemm_acc(std::size_t M, std::size_t K, std::size_t N, const double* A,
              std::size_t sam, std::size_t sak, const double* B,
              std::size_t ldb, double* C, std::size_t ldc) noexcept {
  const std::size_t m_full = M - M % 4;
  const std::size_t n16 = N - N % 16;
  const std::size_t n8 = N - N % 8;
  std::size_t m0 = 0;
  for (; m0 < m_full; m0 += 4) {
    const double* a0p = A + (m0 + 0) * sam;
    const double* a1p = A + (m0 + 1) * sam;
    const double* a2p = A + (m0 + 2) * sam;
    const double* a3p = A + (m0 + 3) * sam;
    double* r0 = C + (m0 + 0) * ldc;
    double* r1 = C + (m0 + 1) * ldc;
    double* r2 = C + (m0 + 2) * ldc;
    double* r3 = C + (m0 + 3) * ldc;
    std::size_t n0 = 0;
    for (; n0 < n16; n0 += 16) {
      v8df c00 = load8(r0 + n0), c01 = load8(r0 + n0 + 8);
      v8df c10 = load8(r1 + n0), c11 = load8(r1 + n0 + 8);
      v8df c20 = load8(r2 + n0), c21 = load8(r2 + n0 + 8);
      v8df c30 = load8(r3 + n0), c31 = load8(r3 + n0 + 8);
      for (std::size_t k = 0; k < K; ++k) {
        const double* bk = B + k * ldb + n0;
        const v8df b0 = load8(bk), b1 = load8(bk + 8);
        const v8df a0 = splat8(a0p[k * sak]);
        const v8df a1 = splat8(a1p[k * sak]);
        const v8df a2 = splat8(a2p[k * sak]);
        const v8df a3 = splat8(a3p[k * sak]);
        c00 += a0 * b0;
        c01 += a0 * b1;
        c10 += a1 * b0;
        c11 += a1 * b1;
        c20 += a2 * b0;
        c21 += a2 * b1;
        c30 += a3 * b0;
        c31 += a3 * b1;
      }
      store8(r0 + n0, c00);
      store8(r0 + n0 + 8, c01);
      store8(r1 + n0, c10);
      store8(r1 + n0 + 8, c11);
      store8(r2 + n0, c20);
      store8(r2 + n0 + 8, c21);
      store8(r3 + n0, c30);
      store8(r3 + n0 + 8, c31);
    }
    for (; n0 < n8; n0 += 8) {
      v8df c0 = load8(r0 + n0), c1 = load8(r1 + n0);
      v8df c2 = load8(r2 + n0), c3 = load8(r3 + n0);
      for (std::size_t k = 0; k < K; ++k) {
        const v8df b0 = load8(B + k * ldb + n0);
        c0 += splat8(a0p[k * sak]) * b0;
        c1 += splat8(a1p[k * sak]) * b0;
        c2 += splat8(a2p[k * sak]) * b0;
        c3 += splat8(a3p[k * sak]) * b0;
      }
      store8(r0 + n0, c0);
      store8(r1 + n0, c1);
      store8(r2 + n0, c2);
      store8(r3 + n0, c3);
    }
    for (; n0 < N; ++n0) {
      double acc0 = r0[n0], acc1 = r1[n0], acc2 = r2[n0], acc3 = r3[n0];
      for (std::size_t k = 0; k < K; ++k) {
        const double b = B[k * ldb + n0];
        acc0 += a0p[k * sak] * b;
        acc1 += a1p[k * sak] * b;
        acc2 += a2p[k * sak] * b;
        acc3 += a3p[k * sak] * b;
      }
      r0[n0] = acc0;
      r1[n0] = acc1;
      r2[n0] = acc2;
      r3[n0] = acc3;
    }
  }
  for (; m0 < M; ++m0) {
    for (std::size_t n = 0; n < N; ++n) {
      double acc = C[m0 * ldc + n];
      for (std::size_t k = 0; k < K; ++k) {
        acc += A[m0 * sam + k * sak] * B[k * ldb + n];
      }
      C[m0 * ldc + n] = acc;
    }
  }
}
#else
// Portable fallback: same ascending-k accumulation, no explicit tiling.
void gemm_acc(std::size_t M, std::size_t K, std::size_t N, const double* A,
              std::size_t sam, std::size_t sak, const double* B,
              std::size_t ldb, double* C, std::size_t ldc) noexcept {
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t n = 0; n < N; ++n) {
      double acc = C[m * ldc + n];
      for (std::size_t k = 0; k < K; ++k) {
        acc += A[m * sam + k * sak] * B[k * ldb + n];
      }
      C[m * ldc + n] = acc;
    }
  }
}
#endif

}  // namespace

double apply_activation(Activation a, double x) noexcept {
  switch (a) {
    case Activation::kLinear:
      return x;
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activation_grad_from_output(Activation a, double y) noexcept {
  switch (a) {
    case Activation::kLinear:
      return 1.0;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - y * y;
    case Activation::kSigmoid:
      return y * (1.0 - y);
  }
  return 1.0;
}

Mlp::Mlp(std::vector<int> sizes, std::vector<Activation> activations,
         common::Rng& rng)
    : sizes_(std::move(sizes)), activations_(std::move(activations)) {
  AUTOHET_CHECK(sizes_.size() >= 2, "MLP needs at least input and output");
  AUTOHET_CHECK(activations_.size() == sizes_.size() - 1,
                "one activation per affine layer required");
  for (int s : sizes_) AUTOHET_CHECK(s > 0, "layer sizes must be positive");

  std::size_t total = 0;
  offsets_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    offsets_.push_back(total);
    total += static_cast<std::size_t>(sizes_[l + 1]) *
                 static_cast<std::size_t>(sizes_[l]) +
             static_cast<std::size_t>(sizes_[l + 1]);
  }
  params_.resize(total);
  grads_.assign(total, 0.0);

  // Xavier/Glorot uniform initialization; biases start at zero.
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const double limit =
        std::sqrt(6.0 / static_cast<double>(sizes_[l] + sizes_[l + 1]));
    double* w = params_.data() + weight_offset(l);
    const std::size_t n = static_cast<std::size_t>(sizes_[l + 1] * sizes_[l]);
    for (std::size_t i = 0; i < n; ++i) w[i] = rng.uniform(-limit, limit);
    double* b = params_.data() + bias_offset(l);
    std::fill(b, b + sizes_[l + 1], 0.0);
  }
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  Cache cache;
  return forward(input, cache);
}

std::vector<double> Mlp::forward(std::span<const double> input,
                                 Cache& cache) const {
  AUTOHET_CHECK(static_cast<int>(input.size()) == sizes_.front(),
                "MLP input size mismatch");
  cache.post.clear();
  cache.post.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::vector<double>& x = cache.post.back();
    const int in = sizes_[l];
    const int out = sizes_[l + 1];
    std::vector<double> y(static_cast<std::size_t>(out));
    const double* w = params_.data() + weight_offset(l);
    const double* b = params_.data() + bias_offset(l);
    for (int o = 0; o < out; ++o) {
      double acc = b[o];
      const double* wrow = w + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) acc += wrow[i] * x[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(o)] = apply_activation(activations_[l], acc);
    }
    cache.post.push_back(std::move(y));
  }
  return cache.post.back();
}

std::vector<double> Mlp::backward(const Cache& cache,
                                  std::span<const double> grad_output) {
  AUTOHET_CHECK(cache.post.size() == sizes_.size(),
                "cache does not match network depth");
  AUTOHET_CHECK(static_cast<int>(grad_output.size()) == sizes_.back(),
                "grad_output size mismatch");
  std::vector<double> delta(grad_output.begin(), grad_output.end());
  for (std::size_t l = sizes_.size() - 1; l-- > 0;) {
    const int in = sizes_[l];
    const int out = sizes_[l + 1];
    const std::vector<double>& y = cache.post[l + 1];
    const std::vector<double>& x = cache.post[l];
    // Through the activation: delta ← delta ⊙ f'(y).
    for (int o = 0; o < out; ++o) {
      delta[static_cast<std::size_t>(o)] *= activation_grad_from_output(
          activations_[l], y[static_cast<std::size_t>(o)]);
    }
    double* gw = grads_.data() + weight_offset(l);
    double* gb = grads_.data() + bias_offset(l);
    const double* w = params_.data() + weight_offset(l);
    std::vector<double> next_delta(static_cast<std::size_t>(in), 0.0);
    for (int o = 0; o < out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      gb[o] += d;
      double* gwrow = gw + static_cast<std::size_t>(o) * in;
      const double* wrow = w + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) {
        gwrow[i] += d * x[static_cast<std::size_t>(i)];
        next_delta[static_cast<std::size_t>(i)] += d * wrow[i];
      }
    }
    delta = std::move(next_delta);
  }
  return delta;
}

const std::vector<double>& Mlp::forward_batch(const double* x,
                                              std::size_t batch,
                                              BatchCache& cache) const {
  AUTOHET_CHECK(x != nullptr && batch > 0, "empty batch");
  cache.batch = batch;
  cache.post.resize(sizes_.size());
  const auto in0 = static_cast<std::size_t>(sizes_.front());
  cache.post[0].assign(x, x + batch * in0);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const auto in = static_cast<std::size_t>(sizes_[l]);
    const auto out = static_cast<std::size_t>(sizes_[l + 1]);
    const std::vector<double>& X = cache.post[l];
    std::vector<double>& Y = cache.post[l + 1];
    Y.resize(batch * out);
    // Transpose W (out×in) into wt (in×out) so the inner accumulation runs
    // unit-stride over independent output neurons.
    cache.wt.resize(in * out);
    const double* w = params_.data() + weight_offset(l);
    for (std::size_t o = 0; o < out; ++o) {
      for (std::size_t i = 0; i < in; ++i) cache.wt[i * out + o] = w[o * in + i];
    }
    const double* b = params_.data() + bias_offset(l);
    const Activation act = activations_[l];
    for (std::size_t s = 0; s < batch; ++s) {
      std::copy(b, b + out, Y.data() + s * out);
    }
    // Y[s][o] = b[o] + Σ_i X[s][i]·wt[i][o], i ascending — the order the
    // per-sample forward() uses.
    gemm_acc(batch, in, out, X.data(), in, 1, cache.wt.data(), out, Y.data(),
             out);
    // Activation applied over the whole batch; the ReLU case is written
    // branchless so it vectorizes (the switch stays outside the loop).
    double* Yd = Y.data();
    const std::size_t n = batch * out;
    switch (act) {
      case Activation::kLinear:
        break;
      case Activation::kRelu:
        for (std::size_t idx = 0; idx < n; ++idx)
          Yd[idx] = Yd[idx] > 0.0 ? Yd[idx] : 0.0;
        break;
      default:
        for (std::size_t idx = 0; idx < n; ++idx)
          Yd[idx] = apply_activation(act, Yd[idx]);
        break;
    }
  }
  return cache.post.back();
}

void Mlp::backward_batch(BatchCache& cache,
                         std::span<const double> grad_output,
                         std::vector<double>* grad_input,
                         bool accumulate_param_grads) {
  const std::size_t batch = cache.batch;
  AUTOHET_CHECK(cache.post.size() == sizes_.size(),
                "cache does not match network depth");
  AUTOHET_CHECK(grad_output.size() ==
                    batch * static_cast<std::size_t>(sizes_.back()),
                "grad_output size mismatch");
  cache.delta.assign(grad_output.begin(), grad_output.end());
  for (std::size_t l = sizes_.size() - 1; l-- > 0;) {
    const auto in = static_cast<std::size_t>(sizes_[l]);
    const auto out = static_cast<std::size_t>(sizes_[l + 1]);
    const std::vector<double>& Y = cache.post[l + 1];
    const std::vector<double>& X = cache.post[l];
    const Activation act = activations_[l];
    // Through the activation: delta ← delta ⊙ f'(y). ReLU branchless as in
    // forward_batch.
    switch (act) {
      case Activation::kLinear:
        break;
      case Activation::kRelu:
        for (std::size_t idx = 0; idx < batch * out; ++idx)
          cache.delta[idx] = Y[idx] > 0.0 ? cache.delta[idx] : 0.0;
        break;
      default:
        for (std::size_t idx = 0; idx < batch * out; ++idx)
          cache.delta[idx] *= activation_grad_from_output(act, Y[idx]);
        break;
    }
    const double* w = params_.data() + weight_offset(l);
    double* gw = grads_.data() + weight_offset(l);
    double* gb = grads_.data() + bias_offset(l);
    // dL/d(input) is only needed below the bottom layer when the caller
    // asked for it; skipping it there changes no other value.
    const bool need_input_grad = (l > 0) || (grad_input != nullptr);
    if (accumulate_param_grads) {
      // gb[o] += Σ_s delta[s][o] and gw[o][i] += Σ_s delta[s][o]·X[s][i],
      // both s ascending — the order per-sample backward() accumulates in.
      for (std::size_t o = 0; o < out; ++o) {
        double acc = gb[o];
        for (std::size_t s = 0; s < batch; ++s)
          acc += cache.delta[s * out + o];
        gb[o] = acc;
      }
      gemm_acc(out, batch, in, cache.delta.data(), 1, out, X.data(), in, gw,
               in);
    }
    if (need_input_grad) {
      // next_delta[s][i] = Σ_o delta[s][o]·w[o][i], o ascending.
      cache.next_delta.assign(batch * in, 0.0);
      gemm_acc(batch, out, in, cache.delta.data(), out, 1, w, in,
               cache.next_delta.data(), in);
      cache.delta.swap(cache.next_delta);
    }
  }
  if (grad_input != nullptr) *grad_input = cache.delta;
}

void Mlp::zero_grads() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::soft_update_from(const Mlp& src, double tau) {
  AUTOHET_CHECK(src.params_.size() == params_.size(),
                "soft update requires identical architectures");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i] = tau * src.params_[i] + (1.0 - tau) * params_[i];
  }
}

void Mlp::copy_params_from(const Mlp& src) {
  AUTOHET_CHECK(src.params_.size() == params_.size(),
                "copy requires identical architectures");
  params_ = src.params_;
}

}  // namespace autohet::rl
