#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::rl {

double apply_activation(Activation a, double x) noexcept {
  switch (a) {
    case Activation::kLinear:
      return x;
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activation_grad_from_output(Activation a, double y) noexcept {
  switch (a) {
    case Activation::kLinear:
      return 1.0;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - y * y;
    case Activation::kSigmoid:
      return y * (1.0 - y);
  }
  return 1.0;
}

Mlp::Mlp(std::vector<int> sizes, std::vector<Activation> activations,
         common::Rng& rng)
    : sizes_(std::move(sizes)), activations_(std::move(activations)) {
  AUTOHET_CHECK(sizes_.size() >= 2, "MLP needs at least input and output");
  AUTOHET_CHECK(activations_.size() == sizes_.size() - 1,
                "one activation per affine layer required");
  for (int s : sizes_) AUTOHET_CHECK(s > 0, "layer sizes must be positive");

  std::size_t total = 0;
  offsets_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    offsets_.push_back(total);
    total += static_cast<std::size_t>(sizes_[l + 1]) *
                 static_cast<std::size_t>(sizes_[l]) +
             static_cast<std::size_t>(sizes_[l + 1]);
  }
  params_.resize(total);
  grads_.assign(total, 0.0);

  // Xavier/Glorot uniform initialization; biases start at zero.
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const double limit =
        std::sqrt(6.0 / static_cast<double>(sizes_[l] + sizes_[l + 1]));
    double* w = params_.data() + weight_offset(l);
    const std::size_t n = static_cast<std::size_t>(sizes_[l + 1] * sizes_[l]);
    for (std::size_t i = 0; i < n; ++i) w[i] = rng.uniform(-limit, limit);
    double* b = params_.data() + bias_offset(l);
    std::fill(b, b + sizes_[l + 1], 0.0);
  }
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  Cache cache;
  return forward(input, cache);
}

std::vector<double> Mlp::forward(std::span<const double> input,
                                 Cache& cache) const {
  AUTOHET_CHECK(static_cast<int>(input.size()) == sizes_.front(),
                "MLP input size mismatch");
  cache.post.clear();
  cache.post.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::vector<double>& x = cache.post.back();
    const int in = sizes_[l];
    const int out = sizes_[l + 1];
    std::vector<double> y(static_cast<std::size_t>(out));
    const double* w = params_.data() + weight_offset(l);
    const double* b = params_.data() + bias_offset(l);
    for (int o = 0; o < out; ++o) {
      double acc = b[o];
      const double* wrow = w + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) acc += wrow[i] * x[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(o)] = apply_activation(activations_[l], acc);
    }
    cache.post.push_back(std::move(y));
  }
  return cache.post.back();
}

std::vector<double> Mlp::backward(const Cache& cache,
                                  std::span<const double> grad_output) {
  AUTOHET_CHECK(cache.post.size() == sizes_.size(),
                "cache does not match network depth");
  AUTOHET_CHECK(static_cast<int>(grad_output.size()) == sizes_.back(),
                "grad_output size mismatch");
  std::vector<double> delta(grad_output.begin(), grad_output.end());
  for (std::size_t l = sizes_.size() - 1; l-- > 0;) {
    const int in = sizes_[l];
    const int out = sizes_[l + 1];
    const std::vector<double>& y = cache.post[l + 1];
    const std::vector<double>& x = cache.post[l];
    // Through the activation: delta ← delta ⊙ f'(y).
    for (int o = 0; o < out; ++o) {
      delta[static_cast<std::size_t>(o)] *= activation_grad_from_output(
          activations_[l], y[static_cast<std::size_t>(o)]);
    }
    double* gw = grads_.data() + weight_offset(l);
    double* gb = grads_.data() + bias_offset(l);
    const double* w = params_.data() + weight_offset(l);
    std::vector<double> next_delta(static_cast<std::size_t>(in), 0.0);
    for (int o = 0; o < out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      gb[o] += d;
      double* gwrow = gw + static_cast<std::size_t>(o) * in;
      const double* wrow = w + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) {
        gwrow[i] += d * x[static_cast<std::size_t>(i)];
        next_delta[static_cast<std::size_t>(i)] += d * wrow[i];
      }
    }
    delta = std::move(next_delta);
  }
  return delta;
}

void Mlp::zero_grads() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::soft_update_from(const Mlp& src, double tau) {
  AUTOHET_CHECK(src.params_.size() == params_.size(),
                "soft update requires identical architectures");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i] = tau * src.params_[i] + (1.0 - tau) * params_[i];
  }
}

void Mlp::copy_params_from(const Mlp& src) {
  AUTOHET_CHECK(src.params_.size() == params_.size(),
                "copy requires identical architectures");
  params_ = src.params_;
}

}  // namespace autohet::rl
