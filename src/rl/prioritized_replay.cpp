#include "rl/prioritized_replay.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::rl {

PrioritizedReplayBuffer::PrioritizedReplayBuffer(std::size_t capacity,
                                                 double alpha, double epsilon)
    : storage_(capacity),
      priorities_(capacity, 0.0),
      alpha_(alpha),
      epsilon_(epsilon) {
  AUTOHET_CHECK(capacity > 0, "replay capacity must be positive");
  AUTOHET_CHECK(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");
  AUTOHET_CHECK(epsilon > 0.0, "epsilon must be positive");
}

void PrioritizedReplayBuffer::add(Transition t) {
  storage_[next_] = std::move(t);
  priorities_[next_] = max_priority_;
  next_ = (next_ + 1) % storage_.size();
  if (size_ < storage_.size()) ++size_;
}

std::vector<PrioritizedReplayBuffer::Sample> PrioritizedReplayBuffer::sample(
    common::Rng& rng, std::size_t batch, double beta) const {
  AUTOHET_CHECK(size_ > 0, "cannot sample from an empty replay buffer");
  AUTOHET_CHECK(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
  // Prefix sums over the live region for inverse-CDF sampling.
  std::vector<double> prefix(size_);
  double total = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    total += priorities_[i];
    prefix[i] = total;
  }
  AUTOHET_CHECK(total > 0.0, "all priorities are zero");

  std::vector<Sample> out;
  out.reserve(batch);
  double max_weight = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const double u = rng.uniform(0.0, total);
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), u);
    const std::size_t idx =
        static_cast<std::size_t>(it - prefix.begin());
    Sample s;
    s.transition = &storage_[idx];
    s.index = idx;
    const double p = priorities_[idx] / total;
    s.weight = std::pow(static_cast<double>(size_) * p, -beta);
    max_weight = std::max(max_weight, s.weight);
    out.push_back(s);
  }
  if (max_weight > 0.0) {
    for (auto& s : out) s.weight /= max_weight;
  }
  return out;
}

void PrioritizedReplayBuffer::update_priority(std::size_t index,
                                              double td_error_abs) {
  AUTOHET_CHECK(index < size_, "priority index out of range");
  AUTOHET_CHECK(td_error_abs >= 0.0, "TD error magnitude must be >= 0");
  const double p = std::pow(td_error_abs + epsilon_, alpha_);
  priorities_[index] = p;
  max_priority_ = std::max(max_priority_, p);
}

}  // namespace autohet::rl
