// The experience pool (paper §3.2): a fixed-capacity ring buffer of
// (S_k, S_{k+1}, a_k, R) transitions with uniform minibatch sampling.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace autohet::rl {

struct Transition {
  std::vector<double> state;
  std::vector<double> next_state;
  double action = 0.0;  ///< continuous action in [0, 1]
  double reward = 0.0;
  bool terminal = false;  ///< last layer of the episode
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void add(Transition t);
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return storage_.size(); }

  /// Uniform sample with replacement of `batch` transitions. Pointers stay
  /// valid until the next add().
  std::vector<const Transition*> sample(common::Rng& rng,
                                        std::size_t batch) const;

 private:
  std::vector<Transition> storage_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

}  // namespace autohet::rl
