#include "serve/serialize.hpp"

#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "report/json.hpp"
#include "report/serialize.hpp"

namespace autohet::serve {

namespace {

using report::as_array;
using report::as_double;
using report::as_int;
using report::as_string;
using report::as_u64_string;
using report::format_double_json;
using report::JsonValue;

void write_traffic_config(std::ostream& os, const TrafficConfig& config,
                          const char* indent) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\n"
     << indent << "  \"seed\": \"" << config.seed << "\",\n"
     << indent << "  \"duration_s\": " << f(config.duration_s) << ",\n"
     << indent << "  \"mean_qps\": " << f(config.mean_qps) << ",\n"
     << indent << "  \"profile\": \"" << rate_profile_name(config.profile)
     << "\",\n"
     << indent << "  \"zipf_s\": " << f(config.zipf_s) << ",\n"
     << indent << "  \"burst_factor\": " << f(config.burst_factor) << ",\n"
     << indent << "  \"burst_fraction\": " << f(config.burst_fraction)
     << ",\n"
     << indent << "  \"burst_period_s\": " << f(config.burst_period_s)
     << ",\n"
     << indent << "  \"diurnal_cycles\": " << f(config.diurnal_cycles)
     << ",\n"
     << indent << "  \"diurnal_depth\": " << f(config.diurnal_depth) << '\n'
     << indent << '}';
}

TrafficConfig read_traffic_config(const JsonValue& obj) {
  TrafficConfig config;
  config.seed = as_u64_string(obj.at("seed"), "seed");
  config.duration_s = as_double(obj.at("duration_s"), "duration_s");
  config.mean_qps = as_double(obj.at("mean_qps"), "mean_qps");
  config.profile =
      rate_profile_from_name(as_string(obj.at("profile"), "profile"));
  config.zipf_s = as_double(obj.at("zipf_s"), "zipf_s");
  config.burst_factor = as_double(obj.at("burst_factor"), "burst_factor");
  config.burst_fraction =
      as_double(obj.at("burst_fraction"), "burst_fraction");
  config.burst_period_s =
      as_double(obj.at("burst_period_s"), "burst_period_s");
  config.diurnal_cycles =
      as_double(obj.at("diurnal_cycles"), "diurnal_cycles");
  config.diurnal_depth =
      as_double(obj.at("diurnal_depth"), "diurnal_depth");
  return config;
}

void write_latency_summary(std::ostream& os, const LatencySummary& latency) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\"p50\": " << f(latency.p50_ms) << ", \"p95\": " << f(latency.p95_ms)
     << ", \"p99\": " << f(latency.p99_ms) << ", \"mean\": "
     << f(latency.mean_ms) << ", \"max\": " << f(latency.max_ms) << '}';
}

}  // namespace

void write_trace_json(std::ostream& os, const TrafficTrace& trace) {
  os << "{\n"
     << "  \"format\": \"autohet-traffic\",\n"
     << "  \"version\": 1,\n"
     << "  \"config\": ";
  write_traffic_config(os, trace.config, "  ");
  os << ",\n  \"num_models\": " << trace.num_models
     << ",\n  \"requests\": [";
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const Request& r = trace.requests[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << r.id
       << ", \"model\": " << r.model << ", \"arrival_ns\": "
       << report::format_double_json(r.arrival_ns) << '}';
  }
  os << "\n  ]\n}\n";
}

TrafficTrace read_trace_json(const std::string& text) {
  const JsonValue doc = report::parse_json(text);
  AUTOHET_CHECK(doc.kind == JsonValue::Kind::kObject,
                "traffic JSON must be an object");
  AUTOHET_CHECK(as_string(doc.at("format"), "format") == "autohet-traffic",
                "not an autohet-traffic document");
  AUTOHET_CHECK(as_int(doc.at("version"), "version") == 1,
                "unsupported traffic trace version");

  TrafficTrace trace;
  trace.config = read_traffic_config(doc.at("config"));
  trace.num_models = as_int(doc.at("num_models"), "num_models");
  for (const JsonValue& r : as_array(doc.at("requests"), "requests")) {
    Request request;
    request.id = as_int(r.at("id"), "id");
    request.model = as_int(r.at("model"), "model");
    request.arrival_ns = as_double(r.at("arrival_ns"), "arrival_ns");
    trace.requests.push_back(request);
  }
  return trace;
}

void write_serving_json(std::ostream& os, const ServingReport& report) {
  const auto f = [](double v) { return format_double_json(v); };
  os << "{\n"
     << "  \"format\": \"autohet-serving\",\n"
     << "  \"version\": 1,\n"
     << "  \"traffic\": ";
  write_traffic_config(os, report.traffic, "  ");
  os << ",\n  \"batching\": {\"max_batch\": " << report.batching.max_batch
     << ", \"max_wait_ns\": " << f(report.batching.max_wait_ns) << "},\n"
     << "  \"fabric\": {\"tile_capacity\": " << report.tile_capacity
     << ", \"eviction\": \"" << eviction_policy_name(report.eviction)
     << "\", \"sharing\": \"" << sharing_scope_name(report.scope)
     << "\", \"functional\": " << (report.functional ? "true" : "false")
     << "},\n"
     << "  \"totals\": {\n"
     << "    \"requests\": " << report.total_requests << ",\n"
     << "    \"batches\": " << report.total_batches << ",\n"
     << "    \"swap_ins\": " << report.swap_ins << ",\n"
     << "    \"evictions\": " << report.evictions << ",\n"
     << "    \"sim_duration_s\": " << f(report.sim_duration_s) << ",\n"
     << "    \"sustained_qps\": " << f(report.sustained_qps) << ",\n"
     << "    \"latency_ms\": ";
  write_latency_summary(os, report.latency);
  os << ",\n    \"mean_batch\": " << f(report.mean_batch) << ",\n"
     << "    \"peak_queue_depth\": " << report.peak_queue_depth << ",\n"
     << "    \"mean_queue_depth\": " << f(report.mean_queue_depth) << ",\n"
     << "    \"accel_busy_fraction\": " << f(report.accel_busy_fraction)
     << ",\n"
     << "    \"energy_nj\": {\"inference\": " << f(report.inference_energy_nj)
     << ", \"programming\": " << f(report.programming_energy_nj)
     << ", \"total\": " << f(report.total_energy_nj) << "},\n"
     << "    \"energy_per_request_nj\": " << f(report.energy_per_request_nj)
     << "\n  },\n  \"models\": [";
  for (std::size_t m = 0; m < report.models.size(); ++m) {
    const ModelServingStats& stats = report.models[m];
    os << (m == 0 ? "\n" : ",\n") << "    {\"model\": " << m
       << ", \"network\": \"" << report::json_escape(stats.network)
       << "\",\n     \"requests\": " << stats.requests
       << ", \"batches\": " << stats.batches
       << ", \"swap_ins\": " << stats.swap_ins
       << ", \"evictions\": " << stats.evictions
       << ", \"mean_batch\": " << f(stats.mean_batch)
       << ",\n     \"latency_ms\": ";
    write_latency_summary(os, stats.latency);
    os << ",\n     \"energy_per_request_nj\": "
       << f(stats.energy_per_request_nj)
       << ", \"inference_energy_nj\": " << f(stats.inference_energy_nj)
       << ", \"standalone_tiles\": " << stats.standalone_tiles << '}';
  }
  os << "\n  ]\n}\n";
}

std::string serving_json_string(const ServingReport& report) {
  std::ostringstream os;
  write_serving_json(os, report);
  return os.str();
}

}  // namespace autohet::serve
