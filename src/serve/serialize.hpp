// Deterministic JSON persistence for the serving layer: traffic traces
// (save -> replay byte-identical) and ServingReports (`BENCH_serving.json`).
// Same conventions as report/serialize.hpp — fixed key order, shortest
// round-trip doubles, 64-bit seeds as decimal strings, no wall-clock or
// host-dependent fields — so `cmp` over two same-seed runs is a valid test.
#pragma once

#include <iosfwd>
#include <string>

#include "serve/simulator.hpp"
#include "serve/traffic.hpp"

namespace autohet::serve {

void write_trace_json(std::ostream& os, const TrafficTrace& trace);
TrafficTrace read_trace_json(const std::string& text);

void write_serving_json(std::ostream& os, const ServingReport& report);

/// write_serving_json into a string (determinism checks, tests).
std::string serving_json_string(const ServingReport& report);

}  // namespace autohet::serve
