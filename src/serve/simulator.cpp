#include "serve/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "reram/scheduler.hpp"

namespace autohet::serve {

void BatchingConfig::validate() const {
  AUTOHET_CHECK(max_batch >= 1, "max_batch must be >= 1");
  AUTOHET_CHECK(max_wait_ns >= 0.0, "max_wait_ns must be non-negative");
}

double percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const auto n = sorted_values.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::max<std::size_t>(1, std::min(rank, n));
  return sorted_values[rank - 1];
}

LatencySummary summarize_latencies(std::vector<double> latencies_ms) {
  LatencySummary summary;
  if (latencies_ms.empty()) return summary;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  summary.p50_ms = percentile(latencies_ms, 50.0);
  summary.p95_ms = percentile(latencies_ms, 95.0);
  summary.p99_ms = percentile(latencies_ms, 99.0);
  double sum = 0.0;
  for (const double v : latencies_ms) sum += v;
  summary.mean_ms = sum / static_cast<double>(latencies_ms.size());
  summary.max_ms = latencies_ms.back();
  return summary;
}

namespace {

/// Per-(model, batch-size) schedule table: each image's finish offset from
/// batch start, plus the batch makespan.
struct ScheduleTable {
  std::vector<double> finish_offset_ns;
  double makespan_ns = 0.0;
};

std::vector<std::vector<ScheduleTable>> build_schedule_tables(
    const ServingFabric& fabric, std::int64_t max_batch,
    common::ThreadPool* pool) {
  const auto num_models = static_cast<std::size_t>(fabric.model_count());
  const auto batches = static_cast<std::size_t>(max_batch);
  std::vector<std::vector<ScheduleTable>> tables(num_models);
  for (auto& per_model : tables) per_model.resize(batches);

  const auto build_one = [&](std::size_t flat) {
    const std::size_t m = flat / batches;
    const auto batch = static_cast<std::int64_t>(flat % batches) + 1;
    const plan::DeploymentPlan& plan =
        fabric.model_plan(static_cast<std::int64_t>(m));
    const reram::ScheduleReport schedule =
        reram::schedule_batch(plan, batch);
    const auto num_layers = static_cast<std::int64_t>(plan.layers.size());
    ScheduleTable& table = tables[m][static_cast<std::size_t>(batch - 1)];
    table.makespan_ns = schedule.makespan_ns;
    table.finish_offset_ns.resize(static_cast<std::size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i) {
      table.finish_offset_ns[static_cast<std::size_t>(i)] =
          schedule.task(i, num_layers - 1, num_layers).finish_ns;
    }
  };

  const std::size_t total = num_models * batches;
  if (pool != nullptr && pool->size() > 1 && total > 1) {
    pool->parallel_for(0, total, build_one);
  } else {
    for (std::size_t flat = 0; flat < total; ++flat) build_one(flat);
  }
  return tables;
}

/// A queue-depth change at a simulated instant. Arrivals sort before
/// removals at the same timestamp so the running depth never dips negative.
struct DepthEvent {
  double t_ns = 0.0;
  int order = 0;  ///< 0 = arrival, 1 = batch pickup
  std::int64_t delta = 0;
};

}  // namespace

ServingReport simulate(ServingFabric& fabric, const BatchingConfig& batching,
                       const TrafficTrace& trace, common::ThreadPool* pool) {
  OBS_SPAN("serve_simulate");
  batching.validate();
  AUTOHET_CHECK(trace.num_models == fabric.model_count(),
                "trace was generated for a different model count");

  const auto num_models = static_cast<std::size_t>(fabric.model_count());
  ServingReport report;
  report.traffic = trace.config;
  report.batching = batching;
  report.tile_capacity = fabric.config().tile_capacity;
  report.eviction = fabric.config().eviction;
  report.scope = fabric.config().scope;
  report.functional = fabric.config().functional;
  report.models.resize(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    ModelServingStats& stats = report.models[m];
    stats.network = fabric.model_plan(static_cast<std::int64_t>(m)).network;
    stats.energy_per_request_nj =
        fabric.model_report(static_cast<std::int64_t>(m)).energy.total_nj();
    stats.standalone_tiles =
        fabric.standalone_tiles(static_cast<std::int64_t>(m));
  }
  if (trace.requests.empty()) return report;

  const std::vector<std::vector<ScheduleTable>> tables =
      build_schedule_tables(fabric, batching.max_batch, pool);

  // Counter baselines so a pre-used fabric reports this run's deltas.
  std::vector<std::int64_t> swap_ins_before(num_models);
  std::vector<std::int64_t> evictions_before(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    swap_ins_before[m] =
        fabric.swap_in_count(static_cast<std::int64_t>(m));
    evictions_before[m] =
        fabric.eviction_count(static_cast<std::int64_t>(m));
  }

  std::vector<std::deque<Request>> queues(num_models);
  std::vector<std::vector<double>> latencies_ms(num_models);
  std::vector<double> all_latencies_ms;
  all_latencies_ms.reserve(trace.requests.size());
  std::vector<DepthEvent> depth_events;
  depth_events.reserve(2 * trace.requests.size());

  std::size_t next = 0;  // next trace request to ingest
  std::int64_t queued = 0;
  double accel_free_ns = 0.0;
  double programming_latency_ns = 0.0;
  double busy_ns = 0.0;
  double last_completion_ns = 0.0;

  const auto ingest_until = [&](double t_ns, bool inclusive) {
    while (next < trace.requests.size() &&
           (inclusive ? trace.requests[next].arrival_ns <= t_ns
                      : trace.requests[next].arrival_ns < t_ns)) {
      const Request& request = trace.requests[next];
      AUTOHET_CHECK(request.model >= 0 &&
                        request.model < fabric.model_count(),
                    "trace request targets an unknown model");
      queues[static_cast<std::size_t>(request.model)].push_back(request);
      depth_events.push_back({request.arrival_ns, 0, +1});
      ++queued;
      ++next;
    }
  };

  // When would queue m's batch dispatch, ignoring future arrivals? Ready at
  // the earlier of "max_batch waiting" and "head timed out", but never
  // before the accelerator frees up.
  const auto dispatch_time = [&](std::size_t m) {
    const std::deque<Request>& queue = queues[m];
    double ready = queue.front().arrival_ns + batching.max_wait_ns;
    if (static_cast<std::int64_t>(queue.size()) >= batching.max_batch) {
      ready = std::min(
          ready,
          queue[static_cast<std::size_t>(batching.max_batch - 1)]
              .arrival_ns);
    }
    return std::max(ready, accel_free_ns);
  };

  while (next < trace.requests.size() || queued > 0) {
    if (queued == 0) {
      ingest_until(trace.requests[next].arrival_ns, /*inclusive=*/true);
      continue;
    }
    // Pick the earliest dispatch; arrivals before it can change the
    // picture (fill a batch earlier), so ingest and recompute until the
    // choice is stable.
    std::size_t best_m = 0;
    double best_t = 0.0;
    for (;;) {
      best_t = std::numeric_limits<double>::infinity();
      for (std::size_t m = 0; m < num_models; ++m) {
        if (queues[m].empty()) continue;
        const double t = dispatch_time(m);
        // Under overload every ready queue ties at accel_free_ns; breaking
        // the tie by model index would starve high-index tenants until the
        // low-index queue drained. Oldest waiting head wins instead.
        const bool wins =
            t < best_t ||
            (t == best_t && queues[m].front().arrival_ns <
                                queues[best_m].front().arrival_ns);
        if (wins) {
          best_t = t;
          best_m = m;
        }
      }
      if (next < trace.requests.size() &&
          trace.requests[next].arrival_ns < best_t) {
        ingest_until(best_t, /*inclusive=*/false);
        continue;
      }
      break;
    }
    // Arrivals at exactly the pickup instant still make the batch.
    ingest_until(best_t, /*inclusive=*/true);

    std::deque<Request>& queue = queues[best_m];
    const auto batch = std::min<std::int64_t>(
        static_cast<std::int64_t>(queue.size()), batching.max_batch);
    const AdmitResult admit =
        fabric.admit(static_cast<std::int64_t>(best_m));
    const double start_ns = best_t + admit.program_latency_ns;
    programming_latency_ns += admit.program_latency_ns;
    report.programming_energy_nj += admit.program_energy_nj;

    const ScheduleTable& table =
        tables[best_m][static_cast<std::size_t>(batch - 1)];
    for (std::int64_t i = 0; i < batch; ++i) {
      const Request request = queue.front();
      queue.pop_front();
      const double finish_ns =
          start_ns + table.finish_offset_ns[static_cast<std::size_t>(i)];
      const double latency_ms = (finish_ns - request.arrival_ns) / 1e6;
      latencies_ms[best_m].push_back(latency_ms);
      all_latencies_ms.push_back(latency_ms);
    }
    queued -= batch;
    depth_events.push_back({best_t, 1, -batch});

    const double finish_ns = start_ns + table.makespan_ns;
    accel_free_ns = finish_ns;
    busy_ns += finish_ns - best_t;
    last_completion_ns = std::max(last_completion_ns, finish_ns);
    report.busy_timeline.push_back(
        {best_t, start_ns, finish_ns, static_cast<std::int64_t>(best_m),
         batch});
    ++report.total_batches;
    ++report.models[best_m].batches;
    report.models[best_m].requests += batch;
    OBS_COUNTER_ADD("autohet_serve_batches_total", 1);
    OBS_HIST_RECORD("autohet_serve_batch_size", batch);
  }

  // Queue-depth curve: merge arrival/pickup deltas in time order (stable on
  // ties: arrivals first) and integrate.
  std::stable_sort(depth_events.begin(), depth_events.end(),
                   [](const DepthEvent& a, const DepthEvent& b) {
                     if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
                     return a.order < b.order;
                   });
  const double first_arrival_ns = trace.requests.front().arrival_ns;
  double depth_integral = 0.0;
  std::int64_t depth = 0;
  std::int64_t peak = 0;
  double prev_t = first_arrival_ns;
  for (std::size_t i = 0; i < depth_events.size();) {
    const double t = depth_events[i].t_ns;
    depth_integral += static_cast<double>(depth) * (t - prev_t);
    while (i < depth_events.size() && depth_events[i].t_ns == t) {
      depth += depth_events[i].delta;
      ++i;
    }
    peak = std::max(peak, depth);
    report.queue_timeline.push_back({t, depth});
    prev_t = t;
  }

  report.total_requests = static_cast<std::int64_t>(trace.requests.size());
  report.first_arrival_ns = first_arrival_ns;
  report.last_completion_ns = last_completion_ns;
  const double span_ns = last_completion_ns - first_arrival_ns;
  report.sim_duration_s = span_ns / 1e9;
  report.sustained_qps =
      span_ns > 0.0
          ? static_cast<double>(report.total_requests) / (span_ns / 1e9)
          : 0.0;
  report.latency = summarize_latencies(std::move(all_latencies_ms));
  report.mean_batch = static_cast<double>(report.total_requests) /
                      static_cast<double>(report.total_batches);
  report.peak_queue_depth = peak;
  report.mean_queue_depth = span_ns > 0.0 ? depth_integral / span_ns : 0.0;
  report.accel_busy_fraction = span_ns > 0.0 ? busy_ns / span_ns : 0.0;

  for (std::size_t m = 0; m < num_models; ++m) {
    ModelServingStats& stats = report.models[m];
    stats.swap_ins = fabric.swap_in_count(static_cast<std::int64_t>(m)) -
                     swap_ins_before[m];
    stats.evictions = fabric.eviction_count(static_cast<std::int64_t>(m)) -
                      evictions_before[m];
    stats.mean_batch =
        stats.batches > 0 ? static_cast<double>(stats.requests) /
                                static_cast<double>(stats.batches)
                          : 0.0;
    stats.latency = summarize_latencies(std::move(latencies_ms[m]));
    stats.inference_energy_nj =
        static_cast<double>(stats.requests) * stats.energy_per_request_nj;
    report.swap_ins += stats.swap_ins;
    report.evictions += stats.evictions;
    // Index-ordered sum — exactly reproducible from the per-model stats.
    report.inference_energy_nj += stats.inference_energy_nj;
  }
  report.total_energy_nj =
      report.inference_energy_nj + report.programming_energy_nj;
  report.energy_per_request_nj =
      report.total_energy_nj / static_cast<double>(report.total_requests);

  OBS_COUNTER_ADD("autohet_serve_requests_total", report.total_requests);
  OBS_GAUGE_SET("autohet_serve_peak_queue_depth", report.peak_queue_depth);
  OBS_GAUGE_SET("autohet_serve_sustained_qps", report.sustained_qps);
  return report;
}

ServingReport simulate(std::vector<plan::DeploymentPlan> plans,
                       const FabricConfig& fabric_config,
                       const BatchingConfig& batching,
                       const TrafficTrace& trace, int threads) {
  if (threads == 1) {
    ServingFabric fabric(std::move(plans), fabric_config);
    return simulate(fabric, batching, trace);
  }
  common::ThreadPool pool(threads == 0
                              ? 0
                              : static_cast<std::size_t>(threads));
  ServingFabric fabric(std::move(plans), fabric_config, &pool);
  return simulate(fabric, batching, trace, &pool);
}

void merge_serving_into_trace(const ServingReport& report,
                              obs::Tracer& tracer) {
  if (!tracer.enabled()) return;
  const auto ts = [](double t_ns) {
    return static_cast<std::uint64_t>(std::llround(std::max(0.0, t_ns)));
  };
  for (const ServingReport::TimelinePoint& point : report.queue_timeline) {
    tracer.counter_at("serve_queue_depth", ts(point.t_ns),
                      static_cast<double>(point.queue_depth));
  }
  for (const ServingReport::BusyInterval& interval : report.busy_timeline) {
    if (interval.program_until_ns > interval.start_ns) {
      tracer.counter_at("serve_programming", ts(interval.start_ns), 1.0);
      tracer.counter_at("serve_programming", ts(interval.program_until_ns),
                        0.0);
    }
    tracer.counter_at("serve_active", ts(interval.start_ns), 1.0);
    tracer.counter_at("serve_active", ts(interval.finish_ns), 0.0);
  }
}

}  // namespace autohet::serve
