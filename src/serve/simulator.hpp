// Discrete-event multi-tenant serving simulation.
//
// The simulator replays a TrafficTrace against a ServingFabric in simulated
// time: requests queue per model, an admission/batching policy forms batches
// (dispatch when max_batch requests are waiting or the oldest has waited
// max_wait), and each dispatched batch occupies the single accelerator for
// the makespan the existing batch scheduler (reram/scheduler.hpp) derives
// from the model's compiled plan — a non-resident model first pays the
// fabric's programming latency. Per-request completion times come from the
// schedule's per-image finish offsets, so the latency distribution reflects
// real pipeline fill/drain behaviour, not an average.
//
// Determinism is the core contract: every quantity in the ServingReport is
// a pure function of (plans, config, trace). The only parallelism is the
// precomputation of per-(model, batch-size) schedule tables and per-model
// reports — pure functions stored by index — so `threads` changes wall
// time, never a byte of output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "mapping/plan.hpp"
#include "obs/trace.hpp"
#include "serve/fabric.hpp"
#include "serve/traffic.hpp"

namespace autohet::serve {

struct BatchingConfig {
  std::int64_t max_batch = 8;
  /// Longest a queued request may wait before its model's batch dispatches
  /// anyway (simulated nanoseconds).
  double max_wait_ns = 200'000.0;

  void validate() const;
};

struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

/// Nearest-rank percentile over an ascending-sorted sample vector.
double percentile(const std::vector<double>& sorted_values, double p);
LatencySummary summarize_latencies(std::vector<double> latencies_ms);

struct ModelServingStats {
  std::string network;
  std::int64_t requests = 0;
  std::int64_t batches = 0;
  std::int64_t swap_ins = 0;
  std::int64_t evictions = 0;
  double mean_batch = 0.0;
  LatencySummary latency;
  double energy_per_request_nj = 0.0;  ///< per-inference plan energy
  double inference_energy_nj = 0.0;    ///< requests * energy_per_request_nj
  std::int64_t standalone_tiles = 0;
};

struct ServingReport {
  // Config echo (written to JSON so a report is self-describing).
  TrafficConfig traffic;
  BatchingConfig batching;
  std::int64_t tile_capacity = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  mapping::SharingScope scope = mapping::SharingScope::kCrossModel;
  bool functional = false;

  std::int64_t total_requests = 0;
  std::int64_t total_batches = 0;
  std::int64_t swap_ins = 0;    ///< programming events, cold loads included
  std::int64_t evictions = 0;
  double first_arrival_ns = 0.0;
  double last_completion_ns = 0.0;
  double sim_duration_s = 0.0;  ///< first arrival to last completion
  double sustained_qps = 0.0;   ///< total_requests / sim_duration_s
  LatencySummary latency;
  double mean_batch = 0.0;
  std::int64_t peak_queue_depth = 0;
  double mean_queue_depth = 0.0;  ///< time-weighted over the sim span
  double accel_busy_fraction = 0.0;  ///< programming + inference time
  /// Inference energy is the index-ordered sum of requests * per-request
  /// plan energy, so external checkers can reproduce it exactly from the
  /// per-model stats; programming energy is kept separate.
  double inference_energy_nj = 0.0;
  double programming_energy_nj = 0.0;
  double total_energy_nj = 0.0;
  double energy_per_request_nj = 0.0;
  std::vector<ModelServingStats> models;

  /// Simulated-time activity curve for the Chrome-trace timeline: queue
  /// depth after each change, and accelerator busy 0/1 edges.
  struct TimelinePoint {
    double t_ns = 0.0;
    std::int64_t queue_depth = 0;
  };
  std::vector<TimelinePoint> queue_timeline;
  struct BusyInterval {
    double start_ns = 0.0;
    double program_until_ns = 0.0;  ///< swap-programming portion, = start
                                    ///< when the batch hit a resident model
    double finish_ns = 0.0;
    std::int64_t model = 0;
    std::int64_t batch = 0;
  };
  std::vector<BusyInterval> busy_timeline;
};

/// Runs the trace against an existing fabric. `pool` (optional) parallelizes
/// the per-(model, batch-size) schedule-table precompute; output is
/// byte-identical for every pool size.
ServingReport simulate(ServingFabric& fabric, const BatchingConfig& batching,
                       const TrafficTrace& trace,
                       common::ThreadPool* pool = nullptr);

/// Convenience wrapper: builds the fabric (precomputing across `threads`
/// workers when > 1), generates nothing — the trace is the caller's.
ServingReport simulate(std::vector<plan::DeploymentPlan> plans,
                       const FabricConfig& fabric_config,
                       const BatchingConfig& batching,
                       const TrafficTrace& trace, int threads = 1);

/// Emits the report's simulated-time activity onto the tracer as counter
/// tracks (`serve_queue_depth`, `serve_active`, `serve_programming`),
/// giving the Chrome-trace timeline of the whole serving run.
void merge_serving_into_trace(const ServingReport& report,
                              obs::Tracer& tracer);

}  // namespace autohet::serve
