#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace autohet::serve {

const char* rate_profile_name(RateProfile profile) noexcept {
  switch (profile) {
    case RateProfile::kConstant:
      return "constant";
    case RateProfile::kBursty:
      return "bursty";
    case RateProfile::kDiurnal:
      return "diurnal";
  }
  return "constant";
}

RateProfile rate_profile_from_name(const std::string& name) {
  if (name == "constant") return RateProfile::kConstant;
  if (name == "bursty") return RateProfile::kBursty;
  if (name == "diurnal") return RateProfile::kDiurnal;
  AUTOHET_CHECK(false, "unknown rate profile: " + name);
  return RateProfile::kConstant;
}

void TrafficConfig::validate() const {
  AUTOHET_CHECK(duration_s > 0.0, "duration_s must be positive");
  AUTOHET_CHECK(mean_qps > 0.0, "mean_qps must be positive");
  AUTOHET_CHECK(zipf_s >= 0.0, "zipf_s must be non-negative");
  if (profile == RateProfile::kBursty) {
    AUTOHET_CHECK(burst_factor >= 1.0, "burst_factor must be >= 1");
    AUTOHET_CHECK(burst_fraction > 0.0 && burst_fraction < 1.0,
                  "burst_fraction must be in (0, 1)");
    AUTOHET_CHECK(burst_factor * burst_fraction <= 1.0,
                  "burst_factor * burst_fraction must be <= 1 (the off-rate "
                  "would be negative)");
    AUTOHET_CHECK(burst_period_s > 0.0, "burst_period_s must be positive");
  }
  if (profile == RateProfile::kDiurnal) {
    AUTOHET_CHECK(diurnal_cycles > 0.0, "diurnal_cycles must be positive");
    AUTOHET_CHECK(diurnal_depth >= 0.0 && diurnal_depth <= 1.0,
                  "diurnal_depth must be in [0, 1]");
  }
}

double rate_at(const TrafficConfig& config, double t_s) {
  switch (config.profile) {
    case RateProfile::kConstant:
      return config.mean_qps;
    case RateProfile::kBursty: {
      const double phase =
          t_s - config.burst_period_s *
                    std::floor(t_s / config.burst_period_s);
      if (phase < config.burst_fraction * config.burst_period_s) {
        return config.mean_qps * config.burst_factor;
      }
      // Off-rate chosen so the period average equals mean_qps exactly.
      return config.mean_qps *
             (1.0 - config.burst_factor * config.burst_fraction) /
             (1.0 - config.burst_fraction);
    }
    case RateProfile::kDiurnal: {
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      return config.mean_qps *
             (1.0 + config.diurnal_depth *
                        std::sin(kTwoPi * config.diurnal_cycles * t_s /
                                 config.duration_s));
    }
  }
  return config.mean_qps;
}

double peak_rate(const TrafficConfig& config) {
  switch (config.profile) {
    case RateProfile::kConstant:
      return config.mean_qps;
    case RateProfile::kBursty:
      return config.mean_qps * config.burst_factor;
    case RateProfile::kDiurnal:
      return config.mean_qps * (1.0 + config.diurnal_depth);
  }
  return config.mean_qps;
}

std::vector<double> zipf_weights(std::int64_t num_models, double s) {
  AUTOHET_CHECK(num_models >= 1, "need at least one model");
  std::vector<double> weights(static_cast<std::size_t>(num_models));
  double total = 0.0;
  for (std::int64_t k = 0; k < num_models; ++k) {
    const double w = 1.0 / std::pow(static_cast<double>(k + 1), s);
    weights[static_cast<std::size_t>(k)] = w;
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

TrafficTrace generate_trace(const TrafficConfig& config,
                            std::int64_t num_models) {
  config.validate();
  AUTOHET_CHECK(num_models >= 1, "need at least one model");

  // Independent child streams so adding a profile knob never perturbs the
  // model-popularity draws of an existing trace.
  const common::Rng base(config.seed);
  common::Rng arrival_rng = base.child(1);
  common::Rng thin_rng = base.child(2);
  common::Rng model_rng = base.child(3);

  std::vector<double> cumulative = zipf_weights(num_models, config.zipf_s);
  for (std::size_t k = 1; k < cumulative.size(); ++k) {
    cumulative[k] += cumulative[k - 1];
  }
  cumulative.back() = 1.0;  // guard against rounding shortfall

  TrafficTrace trace;
  trace.config = config;
  trace.num_models = num_models;

  // Lewis-Shedler thinning: sample a homogeneous process at the majorant
  // rate, keep each point with probability rate(t) / majorant.
  const double majorant = peak_rate(config);
  double t = 0.0;  // seconds
  std::int64_t id = 0;
  for (;;) {
    // uniform() < 1, so the log argument is strictly positive.
    t += -std::log(1.0 - arrival_rng.uniform()) / majorant;
    if (t >= config.duration_s) break;
    if (thin_rng.uniform() * majorant > rate_at(config, t)) continue;
    const double u = model_rng.uniform();
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    Request request;
    request.id = id++;
    request.model =
        static_cast<std::int64_t>(it - cumulative.begin());
    request.arrival_ns = t * 1e9;
    trace.requests.push_back(request);
  }
  return trace;
}

}  // namespace autohet::serve
