// Seeded synthetic serving traffic.
//
// A serving simulator is only as trustworthy as its workload, so the
// generator here is fully deterministic from one 64-bit seed: arrivals are a
// (possibly nonhomogeneous) Poisson process sampled by Lewis-Shedler
// thinning, the instantaneous rate follows one of three profiles (constant,
// bursty on/off, diurnal sinusoid — all preserving the configured mean
// rate), and each request picks a model from a Zipf-skewed popularity
// distribution, the standard model of production inference traffic where a
// few models absorb most requests. A generated trace can be saved to JSON
// and replayed byte-identically (serve/serialize.hpp), so a latency result
// can always be pinned to the exact request stream that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autohet::serve {

enum class RateProfile {
  kConstant,  ///< flat mean_qps
  kBursty,    ///< on/off square wave around the mean
  kDiurnal    ///< sinusoidal day/night swing around the mean
};

/// Stable lower-kebab name used in JSON and on the CLI.
const char* rate_profile_name(RateProfile profile) noexcept;
/// Inverse of rate_profile_name; raises on an unknown name.
RateProfile rate_profile_from_name(const std::string& name);

struct TrafficConfig {
  std::uint64_t seed = 42;
  double duration_s = 1.0;   ///< trace horizon (simulated seconds)
  double mean_qps = 1000.0;  ///< time-averaged arrival rate
  RateProfile profile = RateProfile::kConstant;
  /// Zipf popularity exponent: model k is picked with weight 1/(k+1)^s
  /// (0 = uniform). Lower model indices are more popular.
  double zipf_s = 1.0;
  /// Bursty profile: for `burst_fraction` of each `burst_period_s` the rate
  /// is mean_qps * burst_factor; the rest of the period runs at the
  /// compensating off-rate so the time average stays mean_qps (which
  /// requires burst_factor * burst_fraction <= 1).
  double burst_factor = 4.0;
  double burst_fraction = 0.2;
  double burst_period_s = 0.1;
  /// Diurnal profile: rate = mean_qps * (1 + depth * sin(2pi cycles t/T)).
  double diurnal_cycles = 2.0;
  double diurnal_depth = 0.6;

  /// Raises std::invalid_argument on out-of-range parameters.
  void validate() const;
};

struct Request {
  std::int64_t id = 0;     ///< arrival order, 0-based
  std::int64_t model = 0;  ///< resident-model index
  double arrival_ns = 0.0;
};

struct TrafficTrace {
  TrafficConfig config;
  std::int64_t num_models = 0;
  std::vector<Request> requests;  ///< sorted by arrival_ns
};

/// Instantaneous arrival rate (requests/s) at time `t_s` in [0, duration).
double rate_at(const TrafficConfig& config, double t_s);

/// Upper bound of rate_at over the horizon — the thinning majorant.
double peak_rate(const TrafficConfig& config);

/// Normalized Zipf popularity weights for `num_models` models.
std::vector<double> zipf_weights(std::int64_t num_models, double s);

/// Samples the full trace. Deterministic: same (config, num_models) gives
/// the same request stream, on any host.
TrafficTrace generate_trace(const TrafficConfig& config,
                            std::int64_t num_models);

}  // namespace autohet::serve
