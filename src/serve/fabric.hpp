// Multi-tenant residency on one accelerator fabric.
//
// A ServingFabric owns several compiled DeploymentPlans and tracks which of
// them are currently programmed onto the fabric. Residency is bounded by a
// tile budget: the footprint of a candidate resident set is computed by the
// multi-model allocator (src/mapping/multi_model.hpp) under the configured
// sharing scope, so cross-model tile sharing (§3.4's "tiles 2 and 3 become
// available for ... other models") directly buys extra co-residency. A
// request for a non-resident model evicts victims (LRU or LFU) until the
// set fits, then pays the crossbar-programming cost model
// (reram/programming.hpp) to bring the model in — the swap traffic the
// future endurance subsystem will consume (Hamun, PAPERS.md).
//
// In functional mode every swap-in really programs a SimulatedModel fabric
// from the plan (recording ProfileKind::kProgramWrite per crossbar), so
// tests can check that a re-programmed model matches a fresh compile_plan
// fabric bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "mapping/multi_model.hpp"
#include "mapping/plan.hpp"
#include "nn/model.hpp"
#include "reram/functional.hpp"
#include "reram/programming.hpp"
#include "reram/stats.hpp"

namespace autohet::serve {

enum class EvictionPolicy {
  kLru,  ///< evict the least recently used resident model
  kLfu   ///< evict the least frequently used (ties broken by recency)
};

const char* eviction_policy_name(EvictionPolicy policy) noexcept;
EvictionPolicy eviction_policy_from_name(const std::string& name);

const char* sharing_scope_name(mapping::SharingScope scope) noexcept;
mapping::SharingScope sharing_scope_from_name(const std::string& name);

struct FabricConfig {
  /// Tile budget for the resident set; 0 = unbounded (everything stays
  /// resident after its cold load).
  std::int64_t tile_capacity = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Scope of Algorithm-1 tile sharing when computing residency footprints.
  mapping::SharingScope scope = mapping::SharingScope::kCrossModel;
  reram::ProgrammingParams programming{};
  /// Program a real SimulatedModel on every swap-in (requires sequentially
  /// runnable zoo networks; weights are seeded from `weight_seed` exactly
  /// like the CLI replay path). Analytic-only otherwise.
  bool functional = false;
  std::uint64_t weight_seed = 3;
};

/// Outcome of admitting one request's model.
struct AdmitResult {
  bool swapped_in = false;  ///< the model had to be programmed now
  std::vector<std::int64_t> evicted;  ///< victims, in eviction order
  double program_latency_ns = 0.0;
  double program_energy_nj = 0.0;
};

class ServingFabric {
 public:
  /// All plans must target the same accelerator granularity (xbs_per_tile);
  /// each plan must fit the tile budget on its own. Per-model hardware
  /// reports and programming costs are precomputed here (optionally across
  /// `pool`; results are stored by model index, so the thread count never
  /// changes anything observable).
  ServingFabric(std::vector<plan::DeploymentPlan> plans, FabricConfig config,
                common::ThreadPool* pool = nullptr);

  std::int64_t model_count() const noexcept {
    return static_cast<std::int64_t>(plans_.size());
  }
  const FabricConfig& config() const noexcept { return config_; }
  const plan::DeploymentPlan& model_plan(std::int64_t m) const;
  /// Cached evaluate_plan report (per-inference energy/latency).
  const reram::NetworkReport& model_report(std::int64_t m) const;
  /// Cached full-programming cost of the model's allocation.
  const reram::ProgrammingReport& program_cost(std::int64_t m) const;
  /// Tiles the model occupies when resident alone.
  std::int64_t standalone_tiles(std::int64_t m) const;

  bool resident(std::int64_t m) const;
  std::vector<std::int64_t> resident_models() const;  ///< sorted
  /// Footprint of the current resident set under the sharing scope.
  std::int64_t resident_tiles() const;

  /// Touches model `m` (LRU/LFU bookkeeping) and makes it resident,
  /// evicting victims and paying the programming cost on a miss. Every
  /// programming event — the cold load included — counts as a swap-in.
  AdmitResult admit(std::int64_t m);

  std::int64_t swap_in_count(std::int64_t m) const;
  std::int64_t eviction_count(std::int64_t m) const;

  /// Functional-mode resident fabric (nullptr when analytic-only or when
  /// the model is not resident).
  const reram::SimulatedModel* resident_fabric(std::int64_t m) const;
  /// Functional-mode seeded model (weights), nullptr when analytic-only.
  const nn::Model* model_weights(std::int64_t m) const;

 private:
  /// Memoized footprint of an arbitrary (sorted) model set.
  std::int64_t footprint(const std::vector<std::int64_t>& models) const;
  std::int64_t pick_victim() const;

  FabricConfig config_;
  std::vector<plan::DeploymentPlan> plans_;
  std::vector<reram::NetworkReport> reports_;
  std::vector<reram::ProgrammingReport> program_costs_;
  std::vector<std::int64_t> standalone_tiles_;
  std::vector<mapping::ResidentModel> resident_specs_;  ///< one per model

  std::vector<bool> is_resident_;
  std::vector<std::int64_t> swap_ins_;
  std::vector<std::int64_t> evictions_;
  std::vector<std::int64_t> last_use_;   ///< admit ordinal, -1 = never
  std::vector<std::int64_t> use_count_;
  std::int64_t use_ordinal_ = 0;

  // Functional mode: stable per-model weights plus the currently programmed
  // fabrics (reset on eviction, rebuilt on swap-in).
  std::vector<std::unique_ptr<nn::Model>> models_;
  std::vector<std::unique_ptr<reram::SimulatedModel>> fabrics_;

  mutable std::map<std::vector<std::int64_t>, std::int64_t> footprint_memo_;
};

}  // namespace autohet::serve
