#include "serve/fabric.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model_zoo.hpp"
#include "obs/obs.hpp"

namespace autohet::serve {

const char* eviction_policy_name(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kLfu:
      return "lfu";
  }
  return "lru";
}

EvictionPolicy eviction_policy_from_name(const std::string& name) {
  if (name == "lru") return EvictionPolicy::kLru;
  if (name == "lfu") return EvictionPolicy::kLfu;
  AUTOHET_CHECK(false, "unknown eviction policy: " + name);
  return EvictionPolicy::kLru;
}

const char* sharing_scope_name(mapping::SharingScope scope) noexcept {
  switch (scope) {
    case mapping::SharingScope::kNone:
      return "none";
    case mapping::SharingScope::kPerModel:
      return "per-model";
    case mapping::SharingScope::kCrossModel:
      return "cross-model";
  }
  return "cross-model";
}

mapping::SharingScope sharing_scope_from_name(const std::string& name) {
  if (name == "none") return mapping::SharingScope::kNone;
  if (name == "per-model") return mapping::SharingScope::kPerModel;
  if (name == "cross-model") return mapping::SharingScope::kCrossModel;
  AUTOHET_CHECK(false, "unknown sharing scope: " + name);
  return mapping::SharingScope::kCrossModel;
}

ServingFabric::ServingFabric(std::vector<plan::DeploymentPlan> plans,
                             FabricConfig config, common::ThreadPool* pool)
    : config_(config), plans_(std::move(plans)) {
  AUTOHET_CHECK(!plans_.empty(), "need at least one plan");
  const std::size_t n = plans_.size();
  for (const plan::DeploymentPlan& p : plans_) {
    AUTOHET_CHECK(
        p.allocation.xbs_per_tile == plans_[0].allocation.xbs_per_tile,
        "all plans must share the accelerator's crossbars-per-tile");
  }

  reports_.resize(n);
  program_costs_.resize(n);
  standalone_tiles_.assign(n, 0);
  resident_specs_.resize(n);
  is_resident_.assign(n, false);
  swap_ins_.assign(n, 0);
  evictions_.assign(n, 0);
  last_use_.assign(n, -1);
  use_count_.assign(n, 0);
  models_.resize(n);
  fabrics_.resize(n);

  for (std::size_t m = 0; m < n; ++m) {
    resident_specs_[m].name = plans_[m].network.empty()
                                  ? "model" + std::to_string(m)
                                  : plans_[m].network;
    resident_specs_[m].layers = plans_[m].layers;
    resident_specs_[m].shapes = plans_[m].shapes();
  }

  // Per-model precompute: pure functions of the plan, stored by index, so
  // running them across a pool cannot change any observable result.
  const auto precompute = [&](std::size_t m) {
    reports_[m] = plan::evaluate_plan(plans_[m]);
    program_costs_[m] = reram::evaluate_programming(
        plans_[m].allocation, plans_[m].accel.device, config_.programming,
        plans_[m].accel.faults);
  };
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    pool->parallel_for(0, n, precompute);
  } else {
    for (std::size_t m = 0; m < n; ++m) precompute(m);
  }

  for (std::size_t m = 0; m < n; ++m) {
    standalone_tiles_[m] =
        footprint({static_cast<std::int64_t>(m)});
    AUTOHET_CHECK(
        config_.tile_capacity == 0 ||
            standalone_tiles_[m] <= config_.tile_capacity,
        "plan '" + resident_specs_[m].name +
            "' does not fit the tile budget even alone (" +
            std::to_string(standalone_tiles_[m]) + " > " +
            std::to_string(config_.tile_capacity) + " tiles)");
  }

  if (config_.functional) {
    for (std::size_t m = 0; m < n; ++m) {
      // DAG (v2) plans carry their graph; the model builds over the graph's
      // conv/FC skeleton and swap-ins program the same fabric either way.
      const nn::NetworkSpec net =
          plans_[m].has_graph()
              ? plans_[m].graph.skeleton()
              : nn::network_by_name(plans_[m].network);
      AUTOHET_CHECK(net.sequential_runnable || plans_[m].has_graph(),
                    "functional serving requires a sequentially runnable "
                    "network: " + plans_[m].network);
      common::Rng weight_rng(config_.weight_seed);
      models_[m] = std::make_unique<nn::Model>(net, weight_rng);
    }
  }
}

const plan::DeploymentPlan& ServingFabric::model_plan(std::int64_t m) const {
  return plans_.at(static_cast<std::size_t>(m));
}

const reram::NetworkReport& ServingFabric::model_report(
    std::int64_t m) const {
  return reports_.at(static_cast<std::size_t>(m));
}

const reram::ProgrammingReport& ServingFabric::program_cost(
    std::int64_t m) const {
  return program_costs_.at(static_cast<std::size_t>(m));
}

std::int64_t ServingFabric::standalone_tiles(std::int64_t m) const {
  return standalone_tiles_.at(static_cast<std::size_t>(m));
}

bool ServingFabric::resident(std::int64_t m) const {
  return is_resident_.at(static_cast<std::size_t>(m));
}

std::vector<std::int64_t> ServingFabric::resident_models() const {
  std::vector<std::int64_t> out;
  for (std::size_t m = 0; m < is_resident_.size(); ++m) {
    if (is_resident_[m]) out.push_back(static_cast<std::int64_t>(m));
  }
  return out;
}

std::int64_t ServingFabric::resident_tiles() const {
  const std::vector<std::int64_t> models = resident_models();
  if (models.empty()) return 0;
  return footprint(models);
}

std::int64_t ServingFabric::footprint(
    const std::vector<std::int64_t>& models) const {
  const auto it = footprint_memo_.find(models);
  if (it != footprint_memo_.end()) return it->second;
  std::vector<mapping::ResidentModel> resident;
  resident.reserve(models.size());
  for (const std::int64_t m : models) {
    resident.push_back(resident_specs_.at(static_cast<std::size_t>(m)));
  }
  const mapping::MultiModelResult result =
      mapping::MultiModelAllocator(plans_[0].allocation.xbs_per_tile,
                                   config_.scope)
          .allocate(resident);
  const std::int64_t tiles = result.occupied_tiles();
  footprint_memo_.emplace(models, tiles);
  return tiles;
}

std::int64_t ServingFabric::pick_victim() const {
  std::int64_t victim = -1;
  for (std::size_t m = 0; m < is_resident_.size(); ++m) {
    if (!is_resident_[m]) continue;
    const auto i = static_cast<std::int64_t>(m);
    if (victim < 0) {
      victim = i;
      continue;
    }
    const auto sv = static_cast<std::size_t>(victim);
    const bool better =
        config_.eviction == EvictionPolicy::kLfu
            ? (use_count_[m] < use_count_[sv] ||
               (use_count_[m] == use_count_[sv] &&
                last_use_[m] < last_use_[sv]))
            : last_use_[m] < last_use_[sv];
    if (better) victim = i;
  }
  return victim;
}

AdmitResult ServingFabric::admit(std::int64_t m) {
  const auto sm = static_cast<std::size_t>(m);
  AUTOHET_CHECK(m >= 0 && sm < plans_.size(), "model index out of range");
  last_use_[sm] = use_ordinal_++;
  ++use_count_[sm];

  AdmitResult result;
  if (is_resident_[sm]) return result;

  if (config_.tile_capacity > 0) {
    for (;;) {
      std::vector<std::int64_t> candidate = resident_models();
      candidate.insert(
          std::lower_bound(candidate.begin(), candidate.end(), m), m);
      if (footprint(candidate) <= config_.tile_capacity) break;
      const std::int64_t victim = pick_victim();
      AUTOHET_CHECK(victim >= 0,
                    "resident set cannot fit the tile budget");
      const auto sv = static_cast<std::size_t>(victim);
      is_resident_[sv] = false;
      fabrics_[sv].reset();
      ++evictions_[sv];
      result.evicted.push_back(victim);
    }
  }

  // Program the incoming model: full-allocation write cost, and in
  // functional mode a real fabric (MappedLayer records kProgramWrite per
  // crossbar as it programs).
  const reram::ProgrammingReport& cost = program_costs_[sm];
  result.swapped_in = true;
  result.program_latency_ns = cost.latency_ns;
  result.program_energy_nj = cost.energy_nj;
  if (config_.functional) {
    fabrics_[sm] = std::make_unique<reram::SimulatedModel>(*models_[sm],
                                                           plans_[sm]);
  }
  is_resident_[sm] = true;
  ++swap_ins_[sm];
  OBS_PROFILE_RECORD(obs::ProfileKind::kModelSwap, m, 0, 1);
  OBS_COUNTER_ADD("autohet_serve_swaps_total", 1);
  return result;
}

std::int64_t ServingFabric::swap_in_count(std::int64_t m) const {
  return swap_ins_.at(static_cast<std::size_t>(m));
}

std::int64_t ServingFabric::eviction_count(std::int64_t m) const {
  return evictions_.at(static_cast<std::size_t>(m));
}

const reram::SimulatedModel* ServingFabric::resident_fabric(
    std::int64_t m) const {
  return fabrics_.at(static_cast<std::size_t>(m)).get();
}

const nn::Model* ServingFabric::model_weights(std::int64_t m) const {
  return models_.at(static_cast<std::size_t>(m)).get();
}

}  // namespace autohet::serve
