#include "autohet/env.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mapping/layer_mapping.hpp"

namespace autohet::core {

CrossbarEnv::CrossbarEnv(std::vector<nn::LayerSpec> mappable_layers,
                         EnvConfig config)
    : layers_(std::move(mappable_layers)), config_(std::move(config)) {
  AUTOHET_CHECK(!layers_.empty(), "environment needs at least one layer");
  AUTOHET_CHECK(!config_.candidates.empty(),
                "environment needs at least one crossbar candidate");
  config_.accel.validate();
  for (const auto& layer : layers_) {
    AUTOHET_CHECK(nn::is_mappable(layer.type),
                  "environment layers must be CONV/FC");
    max_inc_ = std::max(max_inc_, static_cast<double>(layer.in_channels));
    max_outc_ = std::max(max_outc_, static_cast<double>(layer.out_channels));
    max_ks_ = std::max(max_ks_,
                       static_cast<double>(layer.kernel * layer.kernel));
    max_stride_ = std::max(max_stride_, static_cast<double>(layer.stride));
    max_weights_ =
        std::max(max_weights_, static_cast<double>(layer.weight_count()));
    max_ins_ = std::max(max_ins_, static_cast<double>(layer.input_size()));
  }
  reram::EvalEngineConfig engine_cfg;
  engine_cfg.memo_capacity = config_.eval_memo_capacity;
  engine_cfg.threads = config_.eval_threads;
  engine_ = std::make_shared<reram::EvaluationEngine>(
      layers_, config_.candidates, config_.accel, engine_cfg);
  if (config_.energy_scale_nj <= 0.0 || config_.area_scale_um2 <= 0.0 ||
      config_.latency_scale_ns <= 0.0) {
    // Auto-calibrate against the largest candidate used homogeneously; any
    // fixed positive constant preserves the reward ordering. Routed through
    // the engine, which also warms the memo for the homogeneous sweeps.
    const auto largest_it = std::max_element(config_.candidates.begin(),
                                             config_.candidates.end());
    const auto largest_idx = static_cast<std::size_t>(
        largest_it - config_.candidates.begin());
    const reram::NetworkReport ref = engine_->evaluate(
        std::vector<std::size_t>(layers_.size(), largest_idx));
    if (config_.energy_scale_nj <= 0.0) {
      config_.energy_scale_nj = std::max(ref.energy.total_nj(), 1.0);
    }
    if (config_.area_scale_um2 <= 0.0) {
      config_.area_scale_um2 = std::max(ref.area.total_um2(), 1.0);
    }
    if (config_.latency_scale_ns <= 0.0) {
      config_.latency_scale_ns = std::max(ref.latency_ns, 1.0);
    }
  }
}

std::vector<double> CrossbarEnv::state(std::size_t k, std::size_t prev_action,
                                       double prev_utilization) const {
  AUTOHET_CHECK(k < layers_.size(), "layer index out of range");
  AUTOHET_CHECK(prev_action < num_actions() || prev_action == 0,
                "previous action out of range");
  const nn::LayerSpec& layer = layers_[k];
  const double n = static_cast<double>(layers_.size());
  const double actions = static_cast<double>(num_actions());
  return {
      static_cast<double>(k) / n,                                   // k
      layer.type == nn::LayerType::kConv ? 1.0 : 0.0,               // t
      static_cast<double>(layer.in_channels) / max_inc_,            // inc
      static_cast<double>(layer.out_channels) / max_outc_,          // outc
      static_cast<double>(layer.kernel * layer.kernel) / max_ks_,   // ks
      static_cast<double>(layer.stride) / max_stride_,              // s
      static_cast<double>(layer.weight_count()) / max_weights_,     // w
      static_cast<double>(layer.input_size()) / max_ins_,           // ins
      actions > 1.0 ? static_cast<double>(prev_action) / (actions - 1.0)
                    : 0.0,                                          // a_k
      prev_utilization,                                             // u_k
  };
}

std::size_t CrossbarEnv::action_to_index(double action) const noexcept {
  const double clamped = std::clamp(action, 0.0, 1.0);
  const auto count = static_cast<double>(num_actions());
  auto idx = static_cast<std::size_t>(clamped * count);
  if (idx >= num_actions()) idx = num_actions() - 1;
  return idx;
}

double CrossbarEnv::layer_utilization(std::size_t k,
                                      std::size_t action_index) const {
  AUTOHET_CHECK(k < layers_.size(), "layer index out of range");
  AUTOHET_CHECK(action_index < num_actions(), "action index out of range");
  return mapping::map_layer(layers_[k], config_.candidates[action_index])
      .utilization();
}

reram::NetworkReport CrossbarEnv::evaluate(
    const std::vector<std::size_t>& action_indices) const {
  return engine_->evaluate(action_indices);
}

std::vector<reram::NetworkReport> CrossbarEnv::evaluate_batch(
    const std::vector<std::vector<std::size_t>>& batch) const {
  return engine_->evaluate_batch(batch);
}

plan::DeploymentPlan CrossbarEnv::compile(
    const std::vector<std::size_t>& action_indices, std::string network) const {
  AUTOHET_CHECK(action_indices.size() == layers_.size(),
                "one action per layer required");
  std::vector<mapping::CrossbarShape> shapes;
  shapes.reserve(action_indices.size());
  for (std::size_t a : action_indices) {
    AUTOHET_CHECK(a < num_actions(), "action index out of range");
    shapes.push_back(config_.candidates[a]);
  }
  return plan::compile_plan(std::move(network), layers_, shapes,
                            config_.accel);
}

double CrossbarEnv::reward(const reram::NetworkReport& report,
                           const std::vector<std::size_t>& action_indices)
    const {
  if (config_.objective != RewardObjective::kRobustnessAware ||
      config_.mc_reward_model == nullptr || config_.accel.faults.ideal()) {
    return reward(report);
  }
  const double e = report.energy.total_nj();
  if (e <= 0.0) return 0.0;
  const double base = report.utilization / (e / config_.energy_scale_nj);
  const reram::RobustnessReport rob = engine_->evaluate_robustness_cached(
      *config_.mc_reward_model, action_indices, config_.accel.faults,
      config_.mc_reward_options);
  return base * rob.mean_accuracy;
}

double CrossbarEnv::reward(const reram::NetworkReport& report) const {
  const double e = report.energy.total_nj();
  if (e <= 0.0) return 0.0;
  const double base = report.utilization / (e / config_.energy_scale_nj);
  switch (config_.objective) {
    case RewardObjective::kUtilizationPerEnergy:
      return base;
    case RewardObjective::kAreaAware: {
      const double a = report.area.total_um2();
      return a > 0.0 ? base / (a / config_.area_scale_um2) : 0.0;
    }
    case RewardObjective::kLatencyAware: {
      const double t = report.latency_ns;
      return t > 0.0 ? base / (t / config_.latency_scale_ns) : 0.0;
    }
    case RewardObjective::kRobustnessAware: {
      const double v =
          std::clamp(report.fault_vulnerability, 0.0, 1.0);
      return base * (1.0 - v);
    }
  }
  return base;
}

}  // namespace autohet::core
