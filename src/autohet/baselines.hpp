// Comparator strategies: the paper's baselines plus validation searchers.
//
//   * Homogeneous accelerators (the paper's five SXB baselines, §4.1).
//   * Manual-Hetero (Fig. 3): hand-assigned 512x512 / 256x256 split.
//   * Greedy: per-layer argmax of layer-level utilization/energy — the
//     natural non-learning heuristic; used to show what layer-local choices
//     miss (the tile-granular system effects the RL reward captures).
//   * Random search: ablates the learning in the RL agent at equal budget.
//   * Exhaustive search: ground-truth optimum for small models/candidate
//     sets, used to bound the RL optimality gap.
#pragma once

#include <cstdint>
#include <vector>

#include "autohet/env.hpp"

namespace autohet::core {

struct StrategyResult {
  std::string name;
  std::vector<std::size_t> actions;
  reram::NetworkReport report;
  double reward = 0.0;
};

/// Evaluates one homogeneous configuration (same candidate for all layers).
StrategyResult evaluate_homogeneous_strategy(const CrossbarEnv& env,
                                             std::size_t candidate_index);

/// Evaluates every candidate homogeneously and returns all results.
std::vector<StrategyResult> homogeneous_sweep(const CrossbarEnv& env);

/// The homogeneous configuration with the highest RUE ("Best-Homo", §4.4).
StrategyResult best_homogeneous(const CrossbarEnv& env);

/// Fig. 3's manual heterogeneous assignment: candidate `head_index` for the
/// first `head_layers` layers, `tail_index` for the rest.
StrategyResult manual_hetero(const CrossbarEnv& env, std::size_t head_index,
                             std::size_t tail_index, std::size_t head_layers);

/// Greedy per-layer choice maximizing layer utilization / layer energy.
StrategyResult greedy_search(const CrossbarEnv& env);

/// Uniform random search with the given evaluation budget.
StrategyResult random_search(const CrossbarEnv& env, int evaluations,
                             std::uint64_t seed);

/// Exhaustive enumeration of all C^N configurations; throws when the space
/// exceeds `max_evaluations`.
StrategyResult exhaustive_search(const CrossbarEnv& env,
                                 std::int64_t max_evaluations = 2'000'000);

}  // namespace autohet::core
