// The crossbar configuration strategy (Fig. 6: "Strategy — L0: XB0, L1:
// XB1, ... Lk: XBk"): the artifact the RL search produces and the Global
// Controller consumes. Serializable to a small line-oriented text format so
// a search result can be saved, inspected, and replayed without re-running
// the search:
//
//   autohet-strategy v1
//   network: VGG16
//   L1: 288x256
//   L2: 576x512
//   ...
//
// The version line is optional on input (files written before the format
// was versioned parse unchanged) but always emitted by to_text.
#pragma once

#include <string>
#include <vector>

#include "mapping/crossbar_shape.hpp"

namespace autohet::core {

/// Version of the strategy text format emitted by Strategy::to_text.
inline constexpr int kStrategyTextVersion = 1;

struct Strategy {
  std::string network;
  std::vector<mapping::CrossbarShape> shapes;  ///< one per mappable layer

  std::string to_text() const;

  /// Parses the text format; throws std::invalid_argument on malformed
  /// input (bad header, unsupported version, out-of-order layer ids,
  /// unparsable shapes), naming the offending line number. A missing
  /// `autohet-strategy v1` line is tolerated for backward compatibility.
  static Strategy from_text(const std::string& text);

  friend bool operator==(const Strategy&, const Strategy&) = default;
};

/// Builds a Strategy from a search/baseline action vector over candidates.
Strategy strategy_from_actions(
    std::string network, const std::vector<mapping::CrossbarShape>& candidates,
    const std::vector<std::size_t>& actions);

}  // namespace autohet::core
