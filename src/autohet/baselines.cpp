#include "autohet/baselines.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace autohet::core {

namespace {
StrategyResult finish(const CrossbarEnv& env, std::string name,
                      std::vector<std::size_t> actions) {
  StrategyResult r;
  r.name = std::move(name);
  r.report = env.evaluate(actions);
  r.reward = env.reward(r.report);
  r.actions = std::move(actions);
  return r;
}

/// Evaluation chunk for the enumerating searchers: big enough to amortize
/// thread-pool dispatch, small enough to keep peak memory flat on the
/// exhaustive C^N space.
constexpr std::size_t kSweepChunk = 1024;
}  // namespace

StrategyResult evaluate_homogeneous_strategy(const CrossbarEnv& env,
                                             std::size_t candidate_index) {
  AUTOHET_CHECK(candidate_index < env.num_actions(),
                "candidate index out of range");
  std::vector<std::size_t> actions(env.num_layers(), candidate_index);
  return finish(env, env.candidates()[candidate_index].name(),
                std::move(actions));
}

std::vector<StrategyResult> homogeneous_sweep(const CrossbarEnv& env) {
  OBS_SPAN("homogeneous_sweep");
  // One batch through the engine: the C configurations are independent, so
  // cache misses evaluate in parallel when the env has eval threads.
  std::vector<std::vector<std::size_t>> batch;
  batch.reserve(env.num_actions());
  for (std::size_t c = 0; c < env.num_actions(); ++c) {
    batch.emplace_back(env.num_layers(), c);
  }
  const auto reports = env.evaluate_batch(batch);
  std::vector<StrategyResult> out;
  out.reserve(env.num_actions());
  for (std::size_t c = 0; c < env.num_actions(); ++c) {
    StrategyResult r;
    r.name = env.candidates()[c].name();
    r.report = reports[c];
    r.reward = env.reward(r.report);
    r.actions = std::move(batch[c]);
    out.push_back(std::move(r));
  }
  return out;
}

StrategyResult best_homogeneous(const CrossbarEnv& env) {
  auto sweep = homogeneous_sweep(env);
  auto best = std::max_element(sweep.begin(), sweep.end(),
                               [](const auto& a, const auto& b) {
                                 return a.report.rue() < b.report.rue();
                               });
  StrategyResult r = std::move(*best);
  r.name = "Best-Homo(" + r.name + ")";
  return r;
}

StrategyResult manual_hetero(const CrossbarEnv& env, std::size_t head_index,
                             std::size_t tail_index, std::size_t head_layers) {
  AUTOHET_CHECK(head_index < env.num_actions() &&
                    tail_index < env.num_actions(),
                "candidate index out of range");
  AUTOHET_CHECK(head_layers <= env.num_layers(),
                "head_layers exceeds layer count");
  std::vector<std::size_t> actions(env.num_layers(), tail_index);
  std::fill(actions.begin(),
            actions.begin() + static_cast<std::ptrdiff_t>(head_layers),
            head_index);
  return finish(env, "Manual-Hetero", std::move(actions));
}

StrategyResult greedy_search(const CrossbarEnv& env) {
  OBS_SPAN("greedy_search");
  std::vector<std::size_t> actions;
  actions.reserve(env.num_layers());
  for (std::size_t k = 0; k < env.num_layers(); ++k) {
    double best_score = -1.0;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < env.num_actions(); ++c) {
      // Layer-local utilization / energy proxy from the engine's
      // precomputed L×C table (identical to a fresh evaluate_layer).
      const reram::LayerReport& lr = env.engine().layer_report(k, c);
      const double e = lr.energy.total_nj();
      const double score = e > 0.0 ? lr.utilization / e : 0.0;
      if (score > best_score) {
        best_score = score;
        best_c = c;
      }
    }
    actions.push_back(best_c);
  }
  return finish(env, "Greedy", std::move(actions));
}

StrategyResult random_search(const CrossbarEnv& env, int evaluations,
                             std::uint64_t seed) {
  AUTOHET_CHECK(evaluations > 0, "evaluations must be positive");
  OBS_SPAN("random_search");
  common::Rng rng(seed);
  StrategyResult best;
  best.name = "Random";
  best.reward = -1.0;
  // Draw every configuration up front (the RNG stream is untouched by
  // evaluation, so the sampled sequence matches the old interleaved loop),
  // then sweep in embarrassingly-parallel chunks through the engine.
  std::vector<std::vector<std::size_t>> chunk;
  chunk.reserve(kSweepChunk);
  int drawn = 0;
  while (drawn < evaluations) {
    chunk.clear();
    while (drawn < evaluations && chunk.size() < kSweepChunk) {
      std::vector<std::size_t> actions(env.num_layers());
      for (auto& a : actions) a = rng.uniform_u64(env.num_actions());
      chunk.push_back(std::move(actions));
      ++drawn;
    }
    const auto reports = env.evaluate_batch(chunk);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const double reward = env.reward(reports[i]);
      if (reward > best.reward) {  // first maximum wins, as before
        best.reward = reward;
        best.report = reports[i];
        best.actions = chunk[i];
      }
    }
  }
  return best;
}

StrategyResult exhaustive_search(const CrossbarEnv& env,
                                 std::int64_t max_evaluations) {
  OBS_SPAN("exhaustive_search");
  const std::size_t n = env.num_layers();
  const std::size_t c = env.num_actions();
  // Overflow-safe space-size check.
  std::int64_t space = 1;
  for (std::size_t i = 0; i < n; ++i) {
    AUTOHET_CHECK(space <= max_evaluations / static_cast<std::int64_t>(c),
                  "exhaustive search space exceeds max_evaluations");
    space *= static_cast<std::int64_t>(c);
  }

  StrategyResult best;
  best.name = "Exhaustive";
  best.reward = -1.0;
  std::vector<std::size_t> actions(n, 0);
  std::vector<std::vector<std::size_t>> chunk;
  chunk.reserve(kSweepChunk);
  bool done = false;
  while (!done) {
    // Enumerate the next odometer chunk of the C^N space...
    chunk.clear();
    while (!done && chunk.size() < kSweepChunk) {
      chunk.push_back(actions);
      std::size_t pos = 0;
      while (pos < n) {
        if (++actions[pos] < c) break;
        actions[pos] = 0;
        ++pos;
      }
      done = (pos == n);
    }
    // ...and fan it out; scanning in enumeration order keeps the returned
    // optimum identical to the serial loop (first maximum wins).
    const auto reports = env.evaluate_batch(chunk);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const double reward = env.reward(reports[i]);
      if (reward > best.reward) {
        best.reward = reward;
        best.report = reports[i];
        best.actions = chunk[i];
      }
    }
  }
  return best;
}

}  // namespace autohet::core
