#include "autohet/baselines.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapping/layer_mapping.hpp"
#include "reram/hardware_model.hpp"

namespace autohet::core {

namespace {
StrategyResult finish(const CrossbarEnv& env, std::string name,
                      std::vector<std::size_t> actions) {
  StrategyResult r;
  r.name = std::move(name);
  r.report = env.evaluate(actions);
  r.reward = env.reward(r.report);
  r.actions = std::move(actions);
  return r;
}
}  // namespace

StrategyResult evaluate_homogeneous_strategy(const CrossbarEnv& env,
                                             std::size_t candidate_index) {
  AUTOHET_CHECK(candidate_index < env.num_actions(),
                "candidate index out of range");
  std::vector<std::size_t> actions(env.num_layers(), candidate_index);
  return finish(env, env.candidates()[candidate_index].name(),
                std::move(actions));
}

std::vector<StrategyResult> homogeneous_sweep(const CrossbarEnv& env) {
  std::vector<StrategyResult> out;
  out.reserve(env.num_actions());
  for (std::size_t c = 0; c < env.num_actions(); ++c) {
    out.push_back(evaluate_homogeneous_strategy(env, c));
  }
  return out;
}

StrategyResult best_homogeneous(const CrossbarEnv& env) {
  auto sweep = homogeneous_sweep(env);
  auto best = std::max_element(sweep.begin(), sweep.end(),
                               [](const auto& a, const auto& b) {
                                 return a.report.rue() < b.report.rue();
                               });
  StrategyResult r = std::move(*best);
  r.name = "Best-Homo(" + r.name + ")";
  return r;
}

StrategyResult manual_hetero(const CrossbarEnv& env, std::size_t head_index,
                             std::size_t tail_index, std::size_t head_layers) {
  AUTOHET_CHECK(head_index < env.num_actions() &&
                    tail_index < env.num_actions(),
                "candidate index out of range");
  AUTOHET_CHECK(head_layers <= env.num_layers(),
                "head_layers exceeds layer count");
  std::vector<std::size_t> actions(env.num_layers(), tail_index);
  std::fill(actions.begin(),
            actions.begin() + static_cast<std::ptrdiff_t>(head_layers),
            head_index);
  return finish(env, "Manual-Hetero", std::move(actions));
}

StrategyResult greedy_search(const CrossbarEnv& env) {
  std::vector<std::size_t> actions;
  actions.reserve(env.num_layers());
  for (std::size_t k = 0; k < env.num_layers(); ++k) {
    double best_score = -1.0;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < env.num_actions(); ++c) {
      // Layer-local utilization / energy proxy using the single-layer report.
      const auto m = mapping::map_layer(env.layers()[k], env.candidates()[c]);
      const auto lr = reram::evaluate_layer(
          env.layers()[k], m, /*tiles_spanned=*/
          (m.logical_crossbars() + env.accel().pes_per_tile - 1) /
              env.accel().pes_per_tile,
          env.accel().device);
      const double e = lr.energy.total_nj();
      const double score = e > 0.0 ? lr.utilization / e : 0.0;
      if (score > best_score) {
        best_score = score;
        best_c = c;
      }
    }
    actions.push_back(best_c);
  }
  return finish(env, "Greedy", std::move(actions));
}

StrategyResult random_search(const CrossbarEnv& env, int evaluations,
                             std::uint64_t seed) {
  AUTOHET_CHECK(evaluations > 0, "evaluations must be positive");
  common::Rng rng(seed);
  StrategyResult best;
  best.name = "Random";
  best.reward = -1.0;
  for (int e = 0; e < evaluations; ++e) {
    std::vector<std::size_t> actions(env.num_layers());
    for (auto& a : actions) a = rng.uniform_u64(env.num_actions());
    const auto report = env.evaluate(actions);
    const double reward = env.reward(report);
    if (reward > best.reward) {
      best.reward = reward;
      best.report = report;
      best.actions = std::move(actions);
    }
  }
  return best;
}

StrategyResult exhaustive_search(const CrossbarEnv& env,
                                 std::int64_t max_evaluations) {
  const std::size_t n = env.num_layers();
  const std::size_t c = env.num_actions();
  // Overflow-safe space-size check.
  std::int64_t space = 1;
  for (std::size_t i = 0; i < n; ++i) {
    AUTOHET_CHECK(space <= max_evaluations / static_cast<std::int64_t>(c),
                  "exhaustive search space exceeds max_evaluations");
    space *= static_cast<std::int64_t>(c);
  }

  StrategyResult best;
  best.name = "Exhaustive";
  best.reward = -1.0;
  std::vector<std::size_t> actions(n, 0);
  for (;;) {
    const auto report = env.evaluate(actions);
    const double reward = env.reward(report);
    if (reward > best.reward) {
      best.reward = reward;
      best.report = report;
      best.actions = actions;
    }
    // Odometer increment over the C^N space.
    std::size_t pos = 0;
    while (pos < n) {
      if (++actions[pos] < c) break;
      actions[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

}  // namespace autohet::core
