// The AutoHet search driver (Fig. 6 workflow).
//
// Decision stage: the DDPG actor assigns a crossbar candidate to each layer
// in order (steps 1-4 of Fig. 6); the accelerator model evaluates the full
// configuration (step 5) and the reward function converts the hardware
// feedback into R (steps 6-7). Learning stage: the per-layer transitions
// (S_k, S_{k+1}, a_k, R) enter the experience pool (steps 8-10) and the
// agent updates the actor/critic pair from sampled minibatches (steps
// 11-12). The stages alternate for a configured number of episodes
// (the paper uses 300 rounds) and the best configuration seen wins.
#pragma once

#include <cstdint>
#include <vector>

#include "autohet/env.hpp"
#include "rl/ddpg.hpp"

namespace autohet::core {

struct SearchConfig {
  int episodes = 300;        ///< paper §4.5: 300-round search
  int warmup_episodes = 25;  ///< exploration episodes that seed the pool
  /// Structured warmup: the first warmup episodes replay each homogeneous
  /// candidate plus the greedy per-layer configuration before switching to
  /// uniform-random exploration. This keeps deep models (ResNet152's 156
  /// layers) from needing thousands of random episodes to see a coherent
  /// configuration, and guarantees the search result dominates those
  /// baselines. Disable for a pure-random warmup.
  bool seeded_warmup = true;
  std::uint64_t seed = 1;
  rl::DdpgConfig ddpg;       ///< state_dim is overridden to kStateDim
};

struct EpisodeRecord {
  std::vector<std::size_t> actions;
  /// The hardware feedback computed for this episode's actions — kept so
  /// the driver never re-evaluates a configuration it already scored.
  reram::NetworkReport report;
  double reward = 0.0;
  double utilization = 0.0;
  double energy_nj = 0.0;
  double rue = 0.0;
  /// Mean critic MSE over this episode's replay updates (0 until the pool
  /// holds a full batch); a convergence diagnostic for the learning stage.
  double mean_critic_loss = 0.0;
};

struct SearchResult {
  std::vector<std::size_t> best_actions;
  reram::NetworkReport best_report;
  double best_reward = 0.0;
  std::vector<EpisodeRecord> history;
  /// Wall-clock split, for the §4.5 search-time analysis.
  double decision_seconds = 0.0;   ///< agent forward passes + bookkeeping
  double simulator_seconds = 0.0;  ///< hardware-model evaluations
  double learning_seconds = 0.0;   ///< experience replay updates
};

class AutoHetSearch {
 public:
  AutoHetSearch(const CrossbarEnv& env, SearchConfig config);

  /// Runs the full decision/learning alternation and returns the best
  /// configuration found.
  SearchResult run();

 private:
  /// Runs one episode. `forced_actions` (when non-null) replays a fixed
  /// configuration (structured warmup); otherwise `explore_randomly`
  /// selects uniform-random vs noisy-policy actions.
  EpisodeRecord run_episode(const std::vector<std::size_t>* forced_actions,
                            bool explore_randomly, SearchResult& result);

  const CrossbarEnv& env_;
  SearchConfig config_;
  common::Rng rng_;
  rl::DdpgAgent agent_;
};

}  // namespace autohet::core
