#include "autohet/search.hpp"

#include "autohet/baselines.hpp"

#include <chrono>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace autohet::core {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One JSONL line of per-episode telemetry for obs::EventLog.
std::string episode_json(int episode, const EpisodeRecord& record,
                         double best_reward, double noise_sigma,
                         double wall_ms) {
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"episode\": %d, \"reward\": %.9g, \"best_reward\": %.9g, "
                "\"utilization\": %.9g, \"energy_nj\": %.9g, \"rue\": %.9g, "
                "\"mean_critic_loss\": %.9g, \"noise_sigma\": %.9g, "
                "\"wall_ms\": %.6g}",
                episode, record.reward, best_reward, record.utilization,
                record.energy_nj, record.rue, record.mean_critic_loss,
                noise_sigma, wall_ms);
  return std::string(line);
}
}  // namespace

AutoHetSearch::AutoHetSearch(const CrossbarEnv& env, SearchConfig config)
    : env_(env),
      config_(config),
      rng_(config.seed),
      agent_([&] {
        rl::DdpgConfig ddpg = config.ddpg;
        ddpg.state_dim = kStateDim;
        return ddpg;
      }(), common::Rng(config.seed ^ 0x5bf0a8b1u)) {
  AUTOHET_CHECK(config_.episodes > 0, "episodes must be positive");
  AUTOHET_CHECK(config_.warmup_episodes >= 0, "warmup must be non-negative");
}

EpisodeRecord AutoHetSearch::run_episode(
    const std::vector<std::size_t>* forced_actions, bool explore_randomly,
    SearchResult& result) {
  const std::size_t n = env_.num_layers();
  EpisodeRecord record;
  record.actions.reserve(n);

  // ---- decision stage: assign a candidate to each layer in order ----
  const auto decision_start = Clock::now();
  std::vector<std::vector<double>> states;
  states.reserve(n + 1);
  {
    OBS_SPAN("decision");
    std::size_t prev_action = 0;
    double prev_util = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      states.push_back(env_.state(k, prev_action, prev_util));
      std::size_t idx;
      if (forced_actions != nullptr) {
        idx = (*forced_actions)[k];
      } else if (explore_randomly) {
        idx = rng_.uniform_u64(env_.num_actions());
      } else {
        idx = env_.action_to_index(agent_.act_with_noise(states.back()));
      }
      record.actions.push_back(idx);
      prev_action = idx;
      prev_util = env_.layer_utilization(k, idx);
    }
    // Bootstrap state after the last layer (terminal; content unused).
    states.push_back(env_.state(n - 1, prev_action, prev_util));
  }
  result.decision_seconds += seconds_since(decision_start);

  // ---- hardware feedback (the "simulator" of §4.5) ----
  const auto sim_start = Clock::now();
  {
    OBS_SPAN("simulator");
    record.report = env_.evaluate(record.actions);
  }
  result.simulator_seconds += seconds_since(sim_start);

  // The actions-aware overload: identical to reward(report) unless the env
  // carries an in-search Monte-Carlo robustness model (kRobustnessAware).
  record.reward = env_.reward(record.report, record.actions);
  record.utilization = record.report.utilization;
  record.energy_nj = record.report.energy.total_nj();
  record.rue = record.report.rue();

  // ---- learning stage: fill the experience pool, update the pair network --
  const auto learn_start = Clock::now();
  {
    OBS_SPAN("learning");
    for (std::size_t k = 0; k < n; ++k) {
      rl::Transition t;
      t.state = states[k];
      t.next_state = states[k + 1];
      t.action = (env_.num_actions() > 1)
                     ? (static_cast<double>(record.actions[k]) + 0.5) /
                           static_cast<double>(env_.num_actions())
                     : 0.5;
      t.reward = record.reward;  // Eq. 3: the episode reward, shared by steps
      t.terminal = (k + 1 == n);
      agent_.remember(std::move(t));
    }
    double loss_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) loss_sum += agent_.update();
    record.mean_critic_loss = loss_sum / static_cast<double>(n);
    agent_.decay_noise();
  }
  result.learning_seconds += seconds_since(learn_start);
  return record;
}

SearchResult AutoHetSearch::run() {
  OBS_SPAN("search_run");
  SearchResult result;
  result.history.reserve(static_cast<std::size_t>(config_.episodes));

  // Structured warmup demonstrations: the homogeneous configurations and
  // the greedy per-layer solution.
  std::vector<std::vector<std::size_t>> seeded;
  if (config_.seeded_warmup) {
    for (std::size_t c = 0; c < env_.num_actions(); ++c) {
      seeded.emplace_back(env_.num_layers(), c);
    }
    seeded.push_back(greedy_search(env_).actions);
  }

  for (int ep = 0; ep < config_.episodes; ++ep) {
    const auto episode_start = Clock::now();
    const bool random_phase = ep < config_.warmup_episodes;
    const std::vector<std::size_t>* forced =
        (random_phase && static_cast<std::size_t>(ep) < seeded.size())
            ? &seeded[static_cast<std::size_t>(ep)]
            : nullptr;
    EpisodeRecord record;
    {
      OBS_SPAN("episode");
      record = run_episode(forced, random_phase, result);
    }
    if (result.history.empty() || record.reward > result.best_reward) {
      result.best_reward = record.reward;
      result.best_actions = record.actions;
      result.best_report = record.report;  // already evaluated this episode
    }
    const double wall_s = seconds_since(episode_start);
    OBS_COUNTER_ADD("autohet_search_episodes_total", 1);
    OBS_GAUGE_SET("autohet_search_episode_reward", record.reward);
    OBS_GAUGE_SET("autohet_search_best_reward", result.best_reward);
    OBS_GAUGE_SET("autohet_search_critic_loss", record.mean_critic_loss);
    OBS_GAUGE_SET("autohet_search_noise_sigma", agent_.noise_sigma());
    OBS_HIST_RECORD("autohet_search_episode_ns", wall_s * 1e9);
    if (record.reward > 0.0) {
      OBS_HIST_RECORD("autohet_search_reward_micros", record.reward * 1e6);
    }
    OBS_TRACE_COUNTER("episode_reward", record.reward);
    OBS_TRACE_COUNTER("best_reward", result.best_reward);
    OBS_TRACE_COUNTER("critic_loss", record.mean_critic_loss);
    OBS_TRACE_COUNTER("noise_sigma", agent_.noise_sigma());
    if (obs::EventLog::global().enabled()) {
      obs::EventLog::global().emit(episode_json(
          ep, record, result.best_reward, agent_.noise_sigma(),
          wall_s * 1e3));
    }
    if ((ep + 1) % 50 == 0) {
      common::log_debug("episode ", ep + 1, "/", config_.episodes,
                        " reward=", record.reward,
                        " best=", result.best_reward);
    }
    result.history.push_back(std::move(record));
  }
  return result;
}

}  // namespace autohet::core
