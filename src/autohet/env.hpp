// The RL environment: state space (Table 1), action quantization, and the
// reward function (Eq. 2) over the behavioral hardware model.
//
// One episode walks the network's mappable layers in order. The observation
// for layer k contains eight static layer features plus the two dynamic
// features the paper lists — the action a and utilization u "obtained from
// the decision stage" of the *previous* step (HAQ-style), so the agent sees
// the consequences of its last choice while deciding the next one. All
// features are normalized to [0, 1] against per-network maxima for
// conditioning.
//
// Reward: the paper defines R = u / e and notes R lands in [0, 1] because e
// is orders of magnitude larger than u. We additionally divide e by a fixed
// per-network scale (the energy of the largest-candidate homogeneous
// configuration) — a constant positive factor that leaves the induced
// ordering of configurations unchanged but keeps R in a numerically friendly
// range for the critic regardless of model size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapping/crossbar_shape.hpp"
#include "mapping/plan.hpp"
#include "nn/layer.hpp"
#include "reram/eval_engine.hpp"
#include "reram/hardware_model.hpp"

namespace autohet::core {

/// What the search optimizes. The paper's reward is utilization/energy
/// (Eq. 2); the area- and latency-aware variants extend it in the
/// direction of §4.5's discussion (edge deployments care about chip area
/// and latency too) by dividing by the additional normalized cost.
enum class RewardObjective {
  kUtilizationPerEnergy,  ///< Eq. 2: R = u / e (the paper)
  kAreaAware,             ///< R = u / (e · a)
  kLatencyAware,          ///< R = u / (e · t)
  /// R = (u / e) · (1 − v) where v is the analytic network fault
  /// vulnerability under accel.faults (reram/faults.hpp). With the default
  /// ideal FaultConfig v = 0, so this reduces exactly to Eq. 2 — opting in
  /// only changes the search when a non-ideal device is configured.
  kRobustnessAware
};

/// The in-search Monte-Carlo budget: a deliberately small adaptive spend
/// (the memo amortizes revisits, the CI target keeps decisive allocations
/// at the minimum) tuned so a robustness-aware search stays within ~2× the
/// plain-reward wall clock (bench/search_time.cpp tracks the ratio).
inline reram::RobustnessOptions default_search_mc_options() {
  reram::RobustnessOptions mc;
  mc.trials = 2;
  mc.samples = 6;
  mc.budget.mode = reram::RobustnessBudget::Mode::kAdaptive;
  // Loose on purpose: one all-agree trial (6/6, Wilson half-width ≈ 0.20)
  // already stops, so decisive allocations cost a single fabric burn. The
  // reward only needs a coarse robustness signal — report-grade CIs come
  // from evaluate_robustness with a real budget.
  mc.budget.ci_halfwidth = 0.2;
  mc.budget.min_trials = 1;
  mc.budget.chunk_trials = 1;
  // Serial on purpose: at this budget a call is one or two forwards, and
  // spawning a per-call worker pool costs more than it saves.
  mc.threads = 1;
  return mc;
}

struct EnvConfig {
  std::vector<mapping::CrossbarShape> candidates;  ///< the action space
  reram::AcceleratorConfig accel;
  RewardObjective objective = RewardObjective::kUtilizationPerEnergy;
  /// Normalization divisors for the reward; 0 = auto-calibrate against the
  /// largest-candidate homogeneous configuration (see above).
  double energy_scale_nj = 0.0;
  double area_scale_um2 = 0.0;
  double latency_scale_ns = 0.0;
  /// Hardware-evaluation engine knobs (see reram/eval_engine.hpp): LRU
  /// bound on memoized NetworkReports and worker threads for
  /// evaluate_batch (0 = serial).
  std::size_t eval_memo_capacity = 4096;
  std::size_t eval_threads = 0;
  /// Measured robustness in the reward loop. When non-null and the
  /// objective is kRobustnessAware (with a non-ideal accel.faults), each
  /// episode's analytic (1 − v) factor is replaced by the *measured*
  /// Monte-Carlo accuracy of this model on the episode's allocation, via
  /// the engine's budgeted+memoized evaluate_robustness_cached under
  /// `mc_reward_options`. Null (the default) keeps the analytic proxy and
  /// leaves every existing reward bit-identical. The model must outlive
  /// the environment and match its mappable layers.
  const nn::Model* mc_reward_model = nullptr;
  reram::RobustnessOptions mc_reward_options = default_search_mc_options();
};

inline constexpr int kStateDim = 10;  // paper Table 1

class CrossbarEnv {
 public:
  CrossbarEnv(std::vector<nn::LayerSpec> mappable_layers, EnvConfig config);

  std::size_t num_layers() const noexcept { return layers_.size(); }
  std::size_t num_actions() const noexcept {
    return config_.candidates.size();
  }
  const std::vector<mapping::CrossbarShape>& candidates() const noexcept {
    return config_.candidates;
  }
  const std::vector<nn::LayerSpec>& layers() const noexcept { return layers_; }
  const reram::AcceleratorConfig& accel() const noexcept {
    return config_.accel;
  }
  double energy_scale_nj() const noexcept { return config_.energy_scale_nj; }
  double area_scale_um2() const noexcept { return config_.area_scale_um2; }
  double latency_scale_ns() const noexcept {
    return config_.latency_scale_ns;
  }
  RewardObjective objective() const noexcept { return config_.objective; }

  /// Table-1 state vector for layer `k`. `prev_action` / `prev_utilization`
  /// are the dynamic features from step k-1 (use 0, 0 for the first layer).
  std::vector<double> state(std::size_t k, std::size_t prev_action,
                            double prev_utilization) const;

  /// Quantizes a continuous DDPG action in [0, 1] to a candidate index.
  std::size_t action_to_index(double action) const noexcept;

  /// Eq. 4 utilization of layer `k` under candidate `action_index`.
  double layer_utilization(std::size_t k, std::size_t action_index) const;

  /// Full hardware evaluation of a per-layer candidate assignment.
  /// Memoized: repeated configurations return the cached NetworkReport,
  /// bit-identical to the uncached path.
  reram::NetworkReport evaluate(
      const std::vector<std::size_t>& action_indices) const;

  /// Evaluates many independent assignments through the engine, fanning
  /// cache misses out over its thread pool when one is configured.
  std::vector<reram::NetworkReport> evaluate_batch(
      const std::vector<std::vector<std::size_t>>& batch) const;

  /// The shared evaluation engine (L×C layer-report table + report memo).
  const reram::EvaluationEngine& engine() const noexcept { return *engine_; }

  /// Compiles one action assignment into a DeploymentPlan for `network`
  /// under this environment's accelerator config — the bridge from a search
  /// result to the save/replay/deploy artifact (mapping/plan.hpp).
  plan::DeploymentPlan compile(const std::vector<std::size_t>& action_indices,
                               std::string network) const;

  /// Eq. 2 reward from a hardware report (utilization over scaled energy).
  double reward(const reram::NetworkReport& report) const;

  /// Reward with the episode's allocation in hand: identical to
  /// reward(report) unless a `mc_reward_model` is configured under the
  /// kRobustnessAware objective, in which case the analytic vulnerability
  /// factor is replaced by the measured (budgeted, memoized) Monte-Carlo
  /// accuracy of that allocation — robustness in the search loop.
  double reward(const reram::NetworkReport& report,
                const std::vector<std::size_t>& action_indices) const;

 private:
  std::vector<nn::LayerSpec> layers_;
  EnvConfig config_;
  /// Shared so copies of the environment share one table + memo.
  std::shared_ptr<reram::EvaluationEngine> engine_;
  // Per-network normalization maxima for the state features.
  double max_inc_ = 1.0;
  double max_outc_ = 1.0;
  double max_ks_ = 1.0;
  double max_stride_ = 1.0;
  double max_weights_ = 1.0;
  double max_ins_ = 1.0;
};

}  // namespace autohet::core
