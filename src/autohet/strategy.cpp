#include "autohet/strategy.hpp"

#include <sstream>
#include <string_view>

#include "common/error.hpp"

namespace autohet::core {

std::string Strategy::to_text() const {
  std::ostringstream oss;
  oss << "autohet-strategy v" << kStrategyTextVersion << '\n';
  oss << "network: " << network << '\n';
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    oss << 'L' << i + 1 << ": " << shapes[i].name() << '\n';
  }
  return oss.str();
}

namespace {

std::string trimmed(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string at_line(std::size_t line_no) {
  return "line " + std::to_string(line_no) + ": ";
}

mapping::CrossbarShape parse_shape(const std::string& text,
                                   std::size_t line_no) {
  const auto x = text.find('x');
  AUTOHET_CHECK(x != std::string::npos && x > 0 && x + 1 < text.size(),
                at_line(line_no) + "malformed crossbar shape: " + text);
  mapping::CrossbarShape shape;
  try {
    std::size_t used = 0;
    shape.rows = std::stoll(text.substr(0, x), &used);
    AUTOHET_CHECK(used == x,
                  at_line(line_no) + "malformed crossbar rows: " + text);
    shape.cols = std::stoll(text.substr(x + 1), &used);
    AUTOHET_CHECK(used == text.size() - x - 1,
                  at_line(line_no) + "malformed crossbar cols: " + text);
  } catch (const std::logic_error&) {
    AUTOHET_CHECK(false,
                  at_line(line_no) + "malformed crossbar shape: " + text);
  }
  AUTOHET_CHECK(shape.rows > 0 && shape.cols > 0,
                at_line(line_no) + "crossbar shape must be positive: " + text);
  return shape;
}

// Parses an "autohet-strategy v<N>" version line; returns false when `line`
// is not a version line at all (legacy files start straight at "network:").
bool parse_version_line(const std::string& line, std::size_t line_no) {
  constexpr std::string_view kMagic = "autohet-strategy";
  if (line.compare(0, kMagic.size(), kMagic) != 0) return false;
  const std::string rest = trimmed(line.substr(kMagic.size()));
  AUTOHET_CHECK(rest.size() >= 2 && rest[0] == 'v',
                at_line(line_no) + "malformed strategy version line: " + line);
  int version = 0;
  try {
    std::size_t used = 0;
    version = std::stoi(rest.substr(1), &used);
    AUTOHET_CHECK(used == rest.size() - 1,
                  at_line(line_no) +
                      "malformed strategy version line: " + line);
  } catch (const std::logic_error&) {
    AUTOHET_CHECK(false, at_line(line_no) +
                             "malformed strategy version line: " + line);
  }
  AUTOHET_CHECK(version == kStrategyTextVersion,
                at_line(line_no) + "unsupported strategy version v" +
                    std::to_string(version) + " (this build understands v" +
                    std::to_string(kStrategyTextVersion) + ")");
  return true;
}

}  // namespace

Strategy Strategy::from_text(const std::string& text) {
  Strategy strategy;
  std::istringstream iss(text);
  std::string line;
  bool version_checked = false;
  bool header_seen = false;
  std::size_t expected_layer = 1;
  std::size_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    line = trimmed(line);
    if (line.empty() || line[0] == '#') continue;
    if (!version_checked && !header_seen) {
      version_checked = true;
      if (parse_version_line(line, line_no)) continue;
    }
    const auto colon = line.find(':');
    AUTOHET_CHECK(colon != std::string::npos,
                  at_line(line_no) + "missing ':' in line: " + line);
    const std::string key = trimmed(line.substr(0, colon));
    const std::string value = trimmed(line.substr(colon + 1));
    if (!header_seen) {
      AUTOHET_CHECK(key == "network",
                    at_line(line_no) +
                        "strategy must start with 'network:', got: " + line);
      AUTOHET_CHECK(!value.empty(),
                    at_line(line_no) + "network name must be non-empty");
      strategy.network = value;
      header_seen = true;
      continue;
    }
    // Built with += rather than "L" + to_string(...): GCC 12's -Wrestrict
    // false-fires on the inlined temporary-string operator+ chain (PR105329).
    std::string expected_key = "L";
    expected_key += std::to_string(expected_layer);
    AUTOHET_CHECK(key == expected_key, at_line(line_no) + "expected " +
                                           expected_key + ", got: " + key);
    strategy.shapes.push_back(parse_shape(value, line_no));
    ++expected_layer;
  }
  AUTOHET_CHECK(header_seen, "empty strategy text");
  AUTOHET_CHECK(!strategy.shapes.empty(), "strategy lists no layers");
  return strategy;
}

Strategy strategy_from_actions(
    std::string network, const std::vector<mapping::CrossbarShape>& candidates,
    const std::vector<std::size_t>& actions) {
  Strategy strategy;
  strategy.network = std::move(network);
  strategy.shapes.reserve(actions.size());
  for (std::size_t a : actions) {
    AUTOHET_CHECK(a < candidates.size(), "action index out of range");
    strategy.shapes.push_back(candidates[a]);
  }
  return strategy;
}

}  // namespace autohet::core
