#include "autohet/strategy.hpp"

#include <sstream>

#include "common/error.hpp"

namespace autohet::core {

std::string Strategy::to_text() const {
  std::ostringstream oss;
  oss << "network: " << network << '\n';
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    oss << 'L' << i + 1 << ": " << shapes[i].name() << '\n';
  }
  return oss.str();
}

namespace {

std::string trimmed(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

mapping::CrossbarShape parse_shape(const std::string& text) {
  const auto x = text.find('x');
  AUTOHET_CHECK(x != std::string::npos && x > 0 && x + 1 < text.size(),
                "malformed crossbar shape: " + text);
  mapping::CrossbarShape shape;
  try {
    std::size_t used = 0;
    shape.rows = std::stoll(text.substr(0, x), &used);
    AUTOHET_CHECK(used == x, "malformed crossbar rows: " + text);
    shape.cols = std::stoll(text.substr(x + 1), &used);
    AUTOHET_CHECK(used == text.size() - x - 1,
                  "malformed crossbar cols: " + text);
  } catch (const std::logic_error&) {
    AUTOHET_CHECK(false, "malformed crossbar shape: " + text);
  }
  AUTOHET_CHECK(shape.rows > 0 && shape.cols > 0,
                "crossbar shape must be positive: " + text);
  return shape;
}

}  // namespace

Strategy Strategy::from_text(const std::string& text) {
  Strategy strategy;
  std::istringstream iss(text);
  std::string line;
  bool header_seen = false;
  std::size_t expected_layer = 1;
  while (std::getline(iss, line)) {
    line = trimmed(line);
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.find(':');
    AUTOHET_CHECK(colon != std::string::npos, "missing ':' in line: " + line);
    const std::string key = trimmed(line.substr(0, colon));
    const std::string value = trimmed(line.substr(colon + 1));
    if (!header_seen) {
      AUTOHET_CHECK(key == "network",
                    "strategy must start with 'network:', got: " + line);
      AUTOHET_CHECK(!value.empty(), "network name must be non-empty");
      strategy.network = value;
      header_seen = true;
      continue;
    }
    AUTOHET_CHECK(key == "L" + std::to_string(expected_layer),
                  "expected L" + std::to_string(expected_layer) +
                      ", got: " + key);
    strategy.shapes.push_back(parse_shape(value));
    ++expected_layer;
  }
  AUTOHET_CHECK(header_seen, "empty strategy text");
  AUTOHET_CHECK(!strategy.shapes.empty(), "strategy lists no layers");
  return strategy;
}

Strategy strategy_from_actions(
    std::string network, const std::vector<mapping::CrossbarShape>& candidates,
    const std::vector<std::size_t>& actions) {
  Strategy strategy;
  strategy.network = std::move(network);
  strategy.shapes.reserve(actions.size());
  for (std::size_t a : actions) {
    AUTOHET_CHECK(a < candidates.size(), "action index out of range");
    strategy.shapes.push_back(candidates[a]);
  }
  return strategy;
}

}  // namespace autohet::core
