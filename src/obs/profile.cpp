#include "obs/profile.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace autohet::obs {

const char* profile_kind_name(ProfileKind kind) noexcept {
  switch (kind) {
    case ProfileKind::kAnalyticEval:
      return "analytic_eval";
    case ProfileKind::kPlanEval:
      return "plan_eval";
    case ProfileKind::kFunctionalMvm:
      return "functional_mvm";
    case ProfileKind::kProgramWrite:
      return "program_write";
    case ProfileKind::kMcTrial:
      return "mc_trial";
    case ProfileKind::kScheduleTask:
      return "schedule_task";
    case ProfileKind::kStageBusyNs:
      return "stage_busy_ns";
    case ProfileKind::kModelSwap:
      return "model_swap";
  }
  return "unknown";
}

std::uint64_t ProfileSnapshot::total(ProfileKind kind) const noexcept {
  std::uint64_t sum = 0;
  for (const ProfileRecord& r : records) {
    if (r.kind == kind) sum += r.value;
  }
  return sum;
}

std::uint64_t ProfileSnapshot::layer_total(ProfileKind kind,
                                           std::int64_t layer) const noexcept {
  std::uint64_t sum = 0;
  for (const ProfileRecord& r : records) {
    if (r.kind == kind && r.layer == layer) sum += r.value;
  }
  return sum;
}

std::uint64_t ProfileSnapshot::value(ProfileKind kind, std::int64_t layer,
                                     std::int64_t unit) const noexcept {
  for (const ProfileRecord& r : records) {
    if (r.kind == kind && r.layer == layer && r.unit == unit) return r.value;
  }
  return 0;
}

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

void Profiler::record(ProfileKind kind, std::int64_t layer, std::int64_t unit,
                      std::uint64_t delta) {
  Shard& shard = shards_[detail::shard_index()];
  const Key key{static_cast<std::uint8_t>(kind), layer, unit};
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counts[key] += delta;
}

ProfileSnapshot Profiler::snapshot() const {
  // Merge into one map first: the per-shard maps are already sorted, and
  // std::map::operator[] keeps the union sorted by (kind, layer, unit),
  // so the result is independent of which thread recorded what.
  std::map<Key, std::uint64_t> merged;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, value] : shard.counts) merged[key] += value;
  }
  ProfileSnapshot snap;
  snap.records.reserve(merged.size());
  for (const auto& [key, value] : merged) {
    snap.records.push_back(ProfileRecord{static_cast<ProfileKind>(key.kind),
                                         key.layer, key.unit, value});
  }
  return snap;
}

void Profiler::reset() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counts.clear();
  }
}

}  // namespace autohet::obs
