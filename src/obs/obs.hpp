// Instrumentation macros — the only interface hot paths should use.
//
// Every macro compiles to nothing when AUTOHET_OBS_DISABLED is defined
// (CMake: -DAUTOHET_OBS=OFF), and at runtime the default state is a null
// sink: spans cost one atomic load until the tracer is enabled, latency
// timers never read the clock until metrics are enabled, counters/gauges
// are single relaxed atomic writes on a per-thread cache line. A run with
// no --trace-out/--metrics-out is observationally identical to a build
// without instrumentation (asserted against BENCH_search_time.json).
//
// Metric references are resolved once per call site via function-local
// statics, so the registry mutex is touched only on first execution.
#pragma once

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

#if !defined(AUTOHET_OBS_DISABLED)

#define AUTOHET_OBS_CONCAT_INNER(a, b) a##b
#define AUTOHET_OBS_CONCAT(a, b) AUTOHET_OBS_CONCAT_INNER(a, b)

/// RAII trace span for the enclosing scope. `name` must be a literal.
#define OBS_SPAN(name)                                      \
  ::autohet::obs::ScopedSpan AUTOHET_OBS_CONCAT(            \
      obs_span_, __LINE__)(name)

/// Adds `delta` to the named monotonic counter.
#define OBS_COUNTER_ADD(name, delta)                                     \
  do {                                                                   \
    static ::autohet::obs::Counter& obs_counter_ref =                    \
        ::autohet::obs::Registry::global().counter(name);                \
    obs_counter_ref.add(delta);                                          \
  } while (false)

/// Sets the named gauge to `value` (converted to double).
#define OBS_GAUGE_SET(name, value)                                       \
  do {                                                                   \
    static ::autohet::obs::Gauge& obs_gauge_ref =                        \
        ::autohet::obs::Registry::global().gauge(name);                  \
    obs_gauge_ref.set(static_cast<double>(value));                       \
  } while (false)

/// Records a non-negative sample into the named log2-bucket histogram.
#define OBS_HIST_RECORD(name, value)                                     \
  do {                                                                   \
    static ::autohet::obs::Histogram& obs_hist_ref =                     \
        ::autohet::obs::Registry::global().histogram(name);              \
    obs_hist_ref.record(static_cast<std::uint64_t>(value));              \
  } while (false)

/// Times the enclosing scope into the named latency histogram (ns).
/// Reads the clock only when metrics are enabled.
#define OBS_SCOPED_LATENCY(name)                                         \
  static ::autohet::obs::Histogram& AUTOHET_OBS_CONCAT(                  \
      obs_lat_hist_, __LINE__) =                                         \
      ::autohet::obs::Registry::global().histogram(name);                \
  ::autohet::obs::ScopedLatencyTimer AUTOHET_OBS_CONCAT(                 \
      obs_lat_timer_, __LINE__)(AUTOHET_OBS_CONCAT(obs_lat_hist_,        \
                                                   __LINE__))

/// Emits a counter-track sample onto the trace timeline (no-op unless the
/// tracer is enabled). `name` must be a literal.
#define OBS_TRACE_COUNTER(name, value)                                   \
  do {                                                                   \
    ::autohet::obs::Tracer& obs_tracer_ref =                             \
        ::autohet::obs::Tracer::global();                                \
    if (obs_tracer_ref.enabled()) {                                      \
      obs_tracer_ref.counter(name, static_cast<double>(value));          \
    }                                                                    \
  } while (false)

/// Adds `delta` to the attribution profiler's (kind, layer, unit) counter
/// (no-op unless the profiler is enabled — one relaxed load otherwise).
#define OBS_PROFILE_RECORD(kind, layer, unit, delta)                     \
  do {                                                                   \
    ::autohet::obs::Profiler& obs_profiler_ref =                         \
        ::autohet::obs::Profiler::global();                              \
    if (obs_profiler_ref.enabled()) {                                    \
      obs_profiler_ref.record((kind),                                    \
                              static_cast<std::int64_t>(layer),          \
                              static_cast<std::int64_t>(unit),           \
                              static_cast<std::uint64_t>(delta));        \
    }                                                                    \
  } while (false)

#else  // AUTOHET_OBS_DISABLED

#define OBS_SPAN(name) ((void)0)
#define OBS_COUNTER_ADD(name, delta) ((void)0)
#define OBS_GAUGE_SET(name, value) ((void)0)
#define OBS_HIST_RECORD(name, value) ((void)0)
#define OBS_SCOPED_LATENCY(name) ((void)0)
#define OBS_TRACE_COUNTER(name, value) ((void)0)
#define OBS_PROFILE_RECORD(kind, layer, unit, delta) ((void)0)

#endif  // AUTOHET_OBS_DISABLED
