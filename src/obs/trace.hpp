// Scoped-span tracer writing Chrome trace_event JSON.
//
// `OBS_SPAN("tile_alloc")` (obs/obs.hpp) opens an RAII span; on destruction
// a complete "X" event (name, ts, dur, tid, nesting depth) is appended to
// the calling thread's ring buffer. Counter tracks (`Tracer::counter`) emit
// "C" events — cache hit-rate, pool queue depth — that trace viewers render
// as value-over-time lanes. `write_chrome_trace()` merges every thread's
// ring into one `{"traceEvents": [...]}` document loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cost model: the tracer is a runtime null sink by default — a span
// constructor is one relaxed atomic load and a branch until `enable()` is
// called (typically by ObsSession when --trace-out is given). When enabled,
// recording locks only the calling thread's own buffer mutex (uncontended
// except during a flush). Rings are bounded: when full the oldest events
// are overwritten and counted in `dropped_events()`, so tracing a very long
// run keeps the tail rather than growing without bound.
//
// Span names must be string literals (or otherwise outlive the tracer);
// the macros only ever pass literals.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace autohet::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< start, ns since process start
  std::uint64_t dur_ns = 0;  ///< span duration ('X' events)
  double value = 0.0;        ///< counter value ('C' events)
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;   ///< span nesting depth, outermost = 0
  char ph = 'X';             ///< 'X' complete span | 'C' counter sample
};

class Tracer {
 public:
  static Tracer& global();

  /// Starts accepting events. Cheap to call repeatedly.
  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends a counter sample to the calling thread's ring (no-op when
  /// disabled). `name` must be a literal.
  void counter(const char* name, double value);

  /// Like counter(), but with an explicit timestamp instead of the wall
  /// clock — used to merge simulated-time tracks (schedule occupancy)
  /// into the same trace stream.
  void counter_at(const char* name, std::uint64_t ts_ns, double value);

  /// Appends a complete span event (used by ScopedSpan).
  void span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
            std::uint32_t depth);

  /// Current nesting depth bookkeeping for the calling thread.
  static std::uint32_t enter_span() noexcept;
  static void exit_span() noexcept;

  /// Merges all thread rings into Chrome trace_event JSON. Safe to call
  /// while other threads keep recording (their new events may or may not
  /// be included).
  void write_chrome_trace(std::ostream& os) const;

  /// All events currently buffered, merged and sorted by start time
  /// (test/inspection hook; the JSON writer uses the same view).
  std::vector<TraceEvent> snapshot_events() const;

  /// Events overwritten because a thread ring wrapped.
  std::uint64_t dropped_events() const;

  /// Drops all buffered events and re-arms rings. Test helper.
  void clear_for_testing();

 private:
  /// The per-thread buffer cache in local_buffer() is keyed by thread only,
  /// so a second Tracer instance on the same thread would reuse (and mix
  /// events into) the buffer registered with the first. Singleton-only.
  Tracer() = default;

  struct ThreadBuffer;
  ThreadBuffer& local_buffer();
  void record(const TraceEvent& ev);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  ///< guards buffers_ (registration + flush)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span; see OBS_SPAN in obs/obs.hpp. Does nothing (one atomic load)
/// when the tracer is disabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (!Tracer::global().enabled()) return;
    name_ = name;
    start_ns_ = ns_since_start();
    depth_ = Tracer::enter_span();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    Tracer::global().span(name_, start_ns_, ns_since_start(), depth_);
    Tracer::exit_span();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// Line-oriented JSON event log (JSONL), used for the per-episode search
/// telemetry. Null sink until `open()` is called; `emit()` appends one
/// pre-rendered JSON object per line under a mutex.
class EventLog {
 public:
  static EventLog& global();

  void open(const std::string& path);
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void emit(const std::string& json_object);
  void close();

 private:
  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  std::unique_ptr<std::ostream> out_;
};

}  // namespace autohet::obs
