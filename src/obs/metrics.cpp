#include "obs/metrics.hpp"

namespace autohet::obs {

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& b : shard.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.buckets = h->buckets();
    s.sum = h->sum();
    for (const auto b : s.buckets) s.count += b;
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset_for_testing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace autohet::obs
