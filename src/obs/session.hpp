// Observability session: CLI flags -> sinks -> output files.
//
// Drivers register the standard flags on their ArgParser, build an
// ObsSession from the parsed args (or from raw argv for the bench binaries,
// which keep their positional-episodes convention), and let the session's
// destructor write the configured outputs:
//
//   common::ArgParser args(...);
//   obs::add_cli_options(args);
//   ...parse...
//   obs::ObsSession session(obs::options_from_cli(args));
//   // --log-level is applied, --trace-out enables the tracer, --metrics-out
//   // enables latency timers; files are written when `session` dies (or on
//   // an explicit session.flush()).
//
// Header-only so the obs core library stays free of dependencies on
// common/cli and report/serialize (which sit above it in the link order).
#pragma once

#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "report/profile_report.hpp"
#include "report/serialize.hpp"

namespace autohet::obs {

struct Options {
  std::string metrics_out;  ///< exposition path; ".json" suffix => JSON
  std::string trace_out;    ///< Chrome trace_event JSON path
  std::string episode_log;  ///< per-episode JSONL path
  std::string profile_out;  ///< attribution-profiler JSON path
  std::string log_level;    ///< debug|info|warn|error|off; empty = keep
};

/// Registers --metrics-out, --trace-out, --episode-log, --profile-out,
/// --log-level.
inline void add_cli_options(common::ArgParser& args) {
  args.add_option("metrics-out", "",
                  "write a metrics exposition here on exit (Prometheus text; "
                  "a .json suffix selects JSON)");
  args.add_option("trace-out", "",
                  "write Chrome trace_event JSON here on exit (load in "
                  "chrome://tracing or ui.perfetto.dev)");
  args.add_option("episode-log", "",
                  "write per-episode search telemetry as JSON lines");
  args.add_option("profile-out", "",
                  "enable the attribution profiler and write its JSON here "
                  "on exit (the profile subcommand writes the full per-plan "
                  "report instead)");
  args.add_option("log-level", "",
                  "minimum log level: debug|info|warn|error|off");
}

inline Options options_from_cli(const common::ArgParser& args) {
  Options opts;
  opts.metrics_out = args.option("metrics-out");
  opts.trace_out = args.option("trace-out");
  opts.episode_log = args.option("episode-log");
  opts.profile_out = args.option("profile-out");
  opts.log_level = args.option("log-level");
  return opts;
}

/// Scans raw argv for the observability flags (--name value or --name=value)
/// and ignores everything else — for binaries that do their own positional
/// parsing (the bench harnesses). Throws (like ArgParser's "needs a value")
/// when a recognized flag is the final argument with no value, rather than
/// silently dropping it.
inline Options options_from_argv(int argc, const char* const* argv) {
  Options opts;
  const auto match = [&](int& i, const char* flag,
                         std::string* out) -> bool {
    const std::string arg = argv[i];
    const std::string name = std::string("--") + flag;
    if (arg == name) {
      if (i + 1 >= argc) common::fail("option " + name + " needs a value");
      *out = argv[++i];
      return true;
    }
    if (arg.rfind(name + "=", 0) == 0) {
      *out = arg.substr(name.size() + 1);
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    if (match(i, "metrics-out", &opts.metrics_out)) continue;
    if (match(i, "trace-out", &opts.trace_out)) continue;
    if (match(i, "episode-log", &opts.episode_log)) continue;
    if (match(i, "profile-out", &opts.profile_out)) continue;
    if (match(i, "log-level", &opts.log_level)) continue;
  }
  return opts;
}

/// Applies the options to the global sinks and writes the output files on
/// destruction (or an explicit flush()). With all paths empty this is a
/// no-op shell: the tracer stays a null sink and nothing is written.
class ObsSession {
 public:
  ObsSession() { touch_globals(); }
  explicit ObsSession(const Options& opts) {
    touch_globals();
    configure(opts);
  }
  explicit ObsSession(const common::ArgParser& args) {
    touch_globals();
    configure(options_from_cli(args));
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession() {
    try {
      flush();
    } catch (...) {
      // Destructors must not throw; a failed flush loses telemetry only.
    }
  }

  /// Throws std::invalid_argument on an unknown --log-level string.
  void configure(const Options& opts) {
    if (!opts.log_level.empty()) {
      common::LogLevel level;
      AUTOHET_CHECK(common::parse_log_level(opts.log_level, &level),
                    "bad --log-level '" + opts.log_level +
                        "' (use debug|info|warn|error|off)");
      common::set_log_level(level);
    }
    metrics_out_ = opts.metrics_out;
    trace_out_ = opts.trace_out;
    profile_out_ = opts.profile_out;
    if (!metrics_out_.empty()) set_metrics_enabled(true);
    if (!trace_out_.empty()) Tracer::global().enable();
    if (!profile_out_.empty()) Profiler::global().enable();
    if (!opts.episode_log.empty()) EventLog::global().open(opts.episode_log);
  }

  /// Claims the --profile-out path: returns it and prevents flush() from
  /// writing the generic raw-records file there. The profile subcommand
  /// uses this to write the full per-plan report to the same path instead.
  std::string take_profile_out() {
    std::string path = profile_out_;
    profile_out_.clear();
    return path;
  }

  /// Writes the configured outputs now. Idempotent: each path is written
  /// at most once per configure().
  void flush() {
    // Account trace-ring overflow before the metrics snapshot below so the
    // counter reaches the exposition file. flush() runs both explicitly and
    // from the destructor, so only the delta since the last flush is added.
    const std::uint64_t dropped = Tracer::global().dropped_events();
    if (dropped > dropped_accounted_) {
      Registry::global()
          .counter("autohet_trace_dropped_events")
          .add(dropped - dropped_accounted_);
      common::log_warn("trace ring overflow: ", dropped - dropped_accounted_,
                       " events dropped (raise span granularity or flush "
                       "more often)");
      dropped_accounted_ = dropped;
    }
    if (!metrics_out_.empty()) {
      std::ofstream file(metrics_out_);
      AUTOHET_CHECK(file.good(), "cannot open metrics file: " + metrics_out_);
      const MetricsSnapshot snap = Registry::global().snapshot();
      if (metrics_out_.ends_with(".json")) {
        report::write_metrics_json(file, snap);
      } else {
        report::write_metrics_prometheus(file, snap);
      }
      metrics_out_.clear();
    }
    if (!trace_out_.empty()) {
      std::ofstream file(trace_out_);
      AUTOHET_CHECK(file.good(), "cannot open trace file: " + trace_out_);
      Tracer::global().write_chrome_trace(file);
      trace_out_.clear();
    }
    if (!profile_out_.empty()) {
      std::ofstream file(profile_out_);
      AUTOHET_CHECK(file.good(), "cannot open profile file: " + profile_out_);
      report::write_profile_records_json(file, Profiler::global().snapshot());
      profile_out_.clear();
    }
    EventLog::global().close();
  }

 private:
  /// Function-local statics destruct in reverse construction order, and
  /// ~ObsSession reaches into Registry/Tracer/EventLog. A session may itself
  /// be a function-local static (bench_common's episodes_from_args), so the
  /// singletons must finish constructing before any session's constructor
  /// returns — otherwise they could be lazily created after the session and
  /// destroyed before its flush() runs.
  static void touch_globals() {
    Registry::global();
    Tracer::global();
    Profiler::global();
    EventLog::global();
  }

  std::string metrics_out_;
  std::string trace_out_;
  std::string profile_out_;
  std::uint64_t dropped_accounted_ = 0;
};

}  // namespace autohet::obs
