// Lock-cheap metrics registry: counters, gauges, and fixed log-scale
// histograms, sharded per thread and aggregated on snapshot.
//
// Hot-path writes never take a lock: each metric owns a small array of
// cache-line-aligned shards and a thread picks its shard by a dense
// thread index, so concurrent increments from the thread pool land on
// different cache lines and cost one relaxed atomic RMW. Reads
// (`Registry::snapshot()`) sum the shards; the snapshot is consistent per
// metric, not across metrics — fine for exposition.
//
// Registration (`Registry::global().counter("name")`) takes a mutex once;
// call sites cache the returned reference in a function-local static (the
// OBS_* macros in obs/obs.hpp do exactly that), so steady-state cost is the
// shard increment alone. Returned references stay valid for the lifetime of
// the registry (metrics are never erased, only reset for tests).
//
// Exposition lives in report/serialize (write_metrics_prometheus /
// write_metrics_json) so the formats sit next to the other emitters.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace autohet::obs {

inline constexpr std::size_t kMetricShards = 16;  // power of two

namespace detail {
inline std::size_t shard_index() noexcept {
  return thread_index() & (kMetricShards - 1);
}
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter (e.g. cache hits). Thread-sharded; add() is one relaxed
/// atomic add on the calling thread's shard.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::CounterShard, kMetricShards> shards_;
};

/// Last-value gauge (e.g. queue depth, last episode reward).
class Gauge {
 public:
  void set(double v) noexcept { bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed); }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Histogram over non-negative integer samples (latencies in ns, batch
/// sizes) with fixed log2-scale buckets: bucket 0 holds the value 0 and
/// bucket b >= 1 holds [2^(b-1), 2^b - 1], so boundaries are compile-time
/// fixed and bucketing is one std::bit_width. Thread-sharded like Counter.
class Histogram {
 public:
  /// 0, [1,1], [2,3], [4,7], ..., [2^63, 2^64-1] — 65 buckets total.
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive upper bound of bucket `b` (the Prometheus `le` label).
  static std::uint64_t bucket_upper_bound(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    auto& shard = shards_[detail::shard_index()];
    shard.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  /// Per-bucket (non-cumulative) totals, aggregated across shards.
  std::array<std::uint64_t, kBuckets> buckets() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time aggregate of every registered metric, for exposition.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Process-wide metric registry. Lookup-or-create is mutex-guarded;
/// returned references are stable (node-based map, values never erased).
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (references stay valid). Test helper.
  void reset_for_testing();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Runtime switch set when a metrics sink is configured (--metrics-out).
/// Counter/gauge updates are cheap enough to run unconditionally; call sites
/// that need a clock (latency histograms) check this first so disabled runs
/// never pay for timestamps.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

/// RAII latency sample: reads the clock only when metrics are enabled and
/// records elapsed nanoseconds into `hist` on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram& hist) noexcept
      : hist_(metrics_enabled() ? &hist : nullptr),
        start_ns_(hist_ ? ns_since_start() : 0) {}
  ~ScopedLatencyTimer() {
    if (hist_) hist_->record(ns_since_start() - start_ns_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t start_ns_;
};

}  // namespace autohet::obs
