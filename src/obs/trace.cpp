#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace autohet::obs {

namespace {
/// Per-thread ring capacity; a span event is ~48 bytes, so a full ring is
/// ~3 MB. Long runs keep the most recent window instead of growing.
constexpr std::size_t kRingCapacity = 1 << 16;

thread_local std::uint32_t t_span_depth = 0;

/// Escapes the characters that can break a JSON string. Names are literals
/// under our control, so this is belt-and-braces.
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}
}  // namespace

struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;       ///< insertion cursor once the ring is full
  std::uint64_t dropped = 0;  ///< events overwritten by wrap-around
  std::uint32_t tid = 0;

  void push(const TraceEvent& ev) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (ring.size() < kRingCapacity) {
      ring.push_back(ev);
    } else {
      ring[next] = ev;
      next = (next + 1) % kRingCapacity;
      ++dropped;
    }
  }
};

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    buf->tid = thread_index();
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(buf);
    return buf;
  }();
  return *buffer;
}

void Tracer::record(const TraceEvent& ev) { local_buffer().push(ev); }

void Tracer::counter(const char* name, double value) {
  counter_at(name, ns_since_start(), value);
}

void Tracer::counter_at(const char* name, std::uint64_t ts_ns, double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = ts_ns;
  ev.value = value;
  ev.tid = thread_index();
  ev.ph = 'C';
  record(ev);
}

void Tracer::span(const char* name, std::uint64_t start_ns,
                  std::uint64_t end_ns, std::uint32_t depth) {
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = start_ns;
  ev.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  ev.tid = thread_index();
  ev.depth = depth;
  ev.ph = 'X';
  record(ev);
}

std::uint32_t Tracer::enter_span() noexcept { return t_span_depth++; }

void Tracer::exit_span() noexcept {
  if (t_span_depth > 0) --t_span_depth;
}

std::vector<TraceEvent> Tracer::snapshot_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    events.insert(events.end(), buf->ring.begin(), buf->ring.end());
  }
  // Start-time order; longer (enclosing) spans first on ties so viewers see
  // parents before children.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.tid < b.tid;
            });
  return events;
}

std::uint64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

void Tracer::clear_for_testing() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    buf->ring.clear();
    buf->next = 0;
    buf->dropped = 0;
  }
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot_events();
  os << "{\"traceEvents\":[\n";
  // Process metadata row so the viewer labels the lane.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"autohet\"}}";
  for (const TraceEvent& ev : events) {
    os << ",\n{\"name\":";
    write_json_string(os, ev.name);
    os << ",\"cat\":\"autohet\",\"ph\":\"" << ev.ph
       << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":"
       << static_cast<double>(ev.ts_ns) / 1000.0;
    if (ev.ph == 'X') {
      os << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1000.0
         << ",\"args\":{\"depth\":" << ev.depth << "}";
    } else {
      os << ",\"args\":{\"value\":" << ev.value << "}";
    }
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":"
     << dropped_events() << "}\n";
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

void EventLog::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto file = std::make_unique<std::ofstream>(path);
  AUTOHET_CHECK(file->good(), "cannot open event log: " + path);
  out_ = std::move(file);
  enabled_.store(true, std::memory_order_relaxed);
}

void EventLog::emit(const std::string& json_object) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_) *out_ << json_object << '\n';
}

void EventLog::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  out_.reset();
}

}  // namespace autohet::obs
