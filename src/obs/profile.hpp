// Attribution profiler: per-layer / per-unit activity counters recorded
// while a plan is evaluated, scheduled, or functionally executed.
//
// The profiler answers "where did the cycles, MVMs, and cell writes go?"
// at (kind, layer, unit) granularity — `unit` is a kind-specific index
// (crossbar index for programming writes, pipeline stage for schedule
// counters, 0 when unused). Counts are recorded into 16 mutex-sharded
// maps keyed by the same dense thread index the metrics registry uses, so
// concurrent Monte-Carlo trials never contend on one lock; `snapshot()`
// merges the shards into a single sorted record list, making the result
// independent of thread count and interleaving.
//
// Contract (mirrors metrics.hpp / trace.hpp):
//   * disabled by default — every OBS_PROFILE_RECORD costs one relaxed
//     atomic load until `Profiler::global().enable()` runs;
//   * compiled out entirely under -DAUTOHET_OBS=OFF (see obs/obs.hpp);
//   * snapshots are deterministic: same work => same records, regardless
//     of mc_threads, kernel variant, or scheduling order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace autohet::obs {

/// What a recorded count measures. Values are stable (serialized to the
/// raw profile-records JSON); append new kinds at the end.
enum class ProfileKind : std::uint8_t {
  kAnalyticEval = 0,  ///< evaluate_allocation visited a layer (unit 0)
  kPlanEval = 1,      ///< a whole-plan analytic evaluation (layer/unit -1/0)
  kFunctionalMvm = 2,  ///< functional-sim MVMs issued for a layer (unit 0)
  kProgramWrite = 3,   ///< cell writes into crossbar `unit` of a layer
  kMcTrial = 4,        ///< Monte-Carlo trials completed (layer/unit -1/0)
  kScheduleTask = 5,   ///< batch-schedule tasks issued to stage `layer`
  kStageBusyNs = 6,    ///< rounded busy nanoseconds of pipeline stage `layer`
  kModelSwap = 7,      ///< serving fabric programmed model `layer` (unit 0)
};

inline constexpr std::size_t kProfileKindCount = 8;

/// Stable lower_snake_case name used in JSON output.
const char* profile_kind_name(ProfileKind kind) noexcept;

struct ProfileRecord {
  ProfileKind kind = ProfileKind::kAnalyticEval;
  std::int64_t layer = 0;  ///< mappable-layer index, or -1 for whole-plan
  std::int64_t unit = 0;   ///< kind-specific sub-index (crossbar, stage, …)
  std::uint64_t value = 0;

  friend bool operator==(const ProfileRecord&, const ProfileRecord&) = default;
};

/// Merged, deterministic view of everything recorded so far. Records are
/// sorted by (kind, layer, unit); lookups are linear — snapshots are
/// report-time objects, not hot-path ones.
struct ProfileSnapshot {
  std::vector<ProfileRecord> records;

  /// Sum over all records of `kind`.
  std::uint64_t total(ProfileKind kind) const noexcept;
  /// Sum over all records of `kind` attributed to `layer`.
  std::uint64_t layer_total(ProfileKind kind, std::int64_t layer) const
      noexcept;
  /// Exact (kind, layer, unit) count, 0 when absent.
  std::uint64_t value(ProfileKind kind, std::int64_t layer,
                      std::int64_t unit = 0) const noexcept;

  friend bool operator==(const ProfileSnapshot&,
                         const ProfileSnapshot&) = default;
};

/// Process-wide profiler singleton. Use through OBS_PROFILE_RECORD on hot
/// paths; direct calls are fine for setup/teardown code (CLI, tests).
class Profiler {
 public:
  static Profiler& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  /// Adds `delta` to the (kind, layer, unit) counter. Thread-safe;
  /// callers normally gate on enabled() via the macro.
  void record(ProfileKind kind, std::int64_t layer, std::int64_t unit,
              std::uint64_t delta);

  /// Merges all shards into one sorted record list. Safe to call while
  /// other threads record (they land in this or a later snapshot whole —
  /// per-record counts never tear).
  ProfileSnapshot snapshot() const;

  /// Drops all recorded counts (keeps the enabled flag). For tests and
  /// the CLI's per-phase accounting.
  void reset();

 private:
  Profiler() = default;

  struct Key {
    std::uint8_t kind;
    std::int64_t layer;
    std::int64_t unit;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::map<Key, std::uint64_t> counts;
  };

  std::atomic<bool> enabled_{false};
  std::array<Shard, 16> shards_;
};

}  // namespace autohet::obs
