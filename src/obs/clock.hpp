// Shared observability clock and thread identity.
//
// All telemetry (log lines, trace spans, counter tracks) timestamps against
// one steady clock anchored at the first call in the process, so a log line
// at "+12.345s" lands at ts=12345000us on the Chrome trace timeline.
// Thread ids are small dense integers (1, 2, 3, ...) assigned on first use —
// readable in trace viewers and log prefixes, unlike std::thread::id.
//
// Header-only on purpose: common/logging (below obs in the link order) and
// the tracer both include it without creating a library cycle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace autohet::obs {

/// Nanoseconds since the first call to this function in the process.
inline std::uint64_t ns_since_start() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

/// Dense per-thread id: the main thread is usually 1, pool workers follow.
inline std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace autohet::obs
