#include "common/rng.hpp"

#include <cmath>

namespace autohet::common {

double Rng::sqrt_neg2log(double s) noexcept {
  return std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace autohet::common
