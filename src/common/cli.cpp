#include "common/cli.hpp"

#include <sstream>

#include "common/error.hpp"

namespace autohet::common {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  AUTOHET_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.is_flag = true;
  opt.default_value = "false";
  opt.value = "false";
  opt.help = help;
  options_[name] = std::move(opt);
}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  AUTOHET_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.default_value = default_value;
  opt.value = default_value;
  opt.help = help;
  options_[name] = std::move(opt);
}

void ArgParser::add_multi_option(const std::string& name,
                                 const std::string& help) {
  AUTOHET_CHECK(!options_.contains(name), "duplicate option: " + name);
  Option opt;
  opt.is_multi = true;
  opt.help = help;
  options_[name] = std::move(opt);
}

void ArgParser::add_positional(const std::string& name,
                               const std::string& help) {
  AUTOHET_CHECK(required_positionals_ == positional_names_.size(),
                "required positional after optional: " + name);
  positional_names_.push_back(name);
  positional_help_.push_back(help);
  ++required_positionals_;
}

void ArgParser::add_optional_positional(const std::string& name,
                                        const std::string& default_value,
                                        const std::string& help) {
  positional_names_.push_back(name);
  positional_help_.push_back(help);
  positional_values_[name] = default_value;
}

bool ArgParser::parse(int argc, const char* const* argv, std::string* error) {
  std::size_t positional_index = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      if (error) *error = help_text();
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string value;
      bool has_inline_value = false;
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline_value = true;
      }
      const auto it = options_.find(name);
      if (it == options_.end()) {
        if (error) *error = "unknown option: --" + name;
        return false;
      }
      Option& opt = it->second;
      if (opt.is_flag) {
        if (has_inline_value) {
          if (error) *error = "flag --" + name + " takes no value";
          return false;
        }
        opt.value = "true";
      } else if (has_inline_value) {
        opt.value = value;
      } else {
        if (i + 1 >= argc) {
          if (error) *error = "option --" + name + " needs a value";
          return false;
        }
        opt.value = argv[++i];
      }
      if (opt.is_multi && !opt.is_flag) opt.values.push_back(opt.value);
      opt.seen = true;
      continue;
    }
    if (positional_index >= positional_names_.size()) {
      if (error) *error = "unexpected argument: " + arg;
      return false;
    }
    positional_values_[positional_names_[positional_index++]] = arg;
  }
  if (positional_index < required_positionals_) {
    if (error) {
      *error = "missing argument: " + positional_names_[positional_index];
    }
    return false;
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = options_.find(name);
  AUTOHET_CHECK(it != options_.end() && it->second.is_flag,
                "unknown flag: " + name);
  return it->second.value == "true";
}

bool ArgParser::provided(const std::string& name) const {
  const auto it = options_.find(name);
  AUTOHET_CHECK(it != options_.end(), "unknown option: " + name);
  return it->second.seen;
}

bool ArgParser::reject_option_conflicts(
    const std::string& gate, const std::vector<std::string>& conflicts,
    std::string* error) const {
  if (!provided(gate)) return true;
  for (const std::string& other : conflicts) {
    if (provided(other)) {
      if (error) {
        *error = "--" + gate + " cannot be combined with --" + other;
      }
      return false;
    }
  }
  return true;
}

const std::string& ArgParser::option(const std::string& name) const {
  const auto it = options_.find(name);
  AUTOHET_CHECK(it != options_.end() && !it->second.is_flag,
                "unknown option: " + name);
  return it->second.value;
}

const std::vector<std::string>& ArgParser::option_list(
    const std::string& name) const {
  const auto it = options_.find(name);
  AUTOHET_CHECK(it != options_.end() && it->second.is_multi,
                "unknown repeatable option: " + name);
  return it->second.values;
}

std::int64_t ArgParser::option_int(const std::string& name) const {
  const std::string& text = option(name);
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(text, &used);
    AUTOHET_CHECK(used == text.size(), "not an integer: " + text);
    return v;
  } catch (const std::logic_error&) {
    AUTOHET_CHECK(false, "option --" + name + " is not an integer: " + text);
  }
  return 0;  // unreachable
}

double ArgParser::option_double(const std::string& name) const {
  const std::string& text = option(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    AUTOHET_CHECK(used == text.size(), "not a number: " + text);
    return v;
  } catch (const std::logic_error&) {
    AUTOHET_CHECK(false, "option --" + name + " is not a number: " + text);
  }
  return 0.0;  // unreachable
}

const std::string& ArgParser::positional(const std::string& name) const {
  const auto it = positional_values_.find(name);
  AUTOHET_CHECK(it != positional_values_.end(),
                "unknown positional: " + name);
  return it->second;
}

std::string ArgParser::help_text() const {
  std::ostringstream oss;
  oss << "usage: " << program_;
  for (std::size_t i = 0; i < positional_names_.size(); ++i) {
    const bool required = i < required_positionals_;
    oss << (required ? " <" : " [") << positional_names_[i]
        << (required ? '>' : ']');
  }
  oss << " [options]\n\n" << description_ << "\n\n";
  for (std::size_t i = 0; i < positional_names_.size(); ++i) {
    const bool required = i < required_positionals_;
    oss << (required ? "  <" : "  [") << positional_names_[i]
        << (required ? ">  " : "]  ") << positional_help_[i] << '\n';
  }
  oss << "\noptions:\n";
  for (const auto& [name, opt] : options_) {
    oss << "  --" << name;
    if (opt.is_multi) {
      oss << " <value> (repeatable)";
    } else if (!opt.is_flag) {
      oss << " <value> (default: " << opt.default_value << ')';
    }
    oss << "\n      " << opt.help << '\n';
  }
  return oss.str();
}

}  // namespace autohet::common
