#include "common/logging.hpp"

namespace autohet::common {

LogLevel& log_level() noexcept {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

std::mutex& log_mutex() noexcept {
  static std::mutex mutex;
  return mutex;
}

void log_line(LogLevel level, std::string_view message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::lock_guard<std::mutex> guard(log_mutex());
  std::cerr << "[autohet " << kNames[idx] << "] " << message << '\n';
}

}  // namespace autohet::common
