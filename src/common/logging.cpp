#include "common/logging.hpp"

#include <cstdio>

#include "obs/clock.hpp"

namespace autohet::common {

namespace {
std::atomic<LogLevel>& level_storage() noexcept {
  static std::atomic<LogLevel> level{LogLevel::kInfo};
  return level;
}
}  // namespace

LogLevel log_level() noexcept {
  return level_storage().load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(level, std::memory_order_relaxed);
}

bool parse_log_level(std::string_view text, LogLevel* out) noexcept {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

std::mutex& log_mutex() noexcept {
  static std::mutex mutex;
  return mutex;
}

void log_line(LogLevel level, std::string_view message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  // Same clock as the trace spans: "+12.345s" here is ts=12345000us there.
  const double seconds =
      static_cast<double>(obs::ns_since_start()) / 1e9;
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "+%.3fs t%u", seconds,
                obs::thread_index());
  std::lock_guard<std::mutex> guard(log_mutex());
  std::cerr << "[autohet " << kNames[idx] << ' ' << prefix << "] " << message
            << '\n';
}

}  // namespace autohet::common
