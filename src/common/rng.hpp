// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library (synthetic weights, synthetic
// inputs, RL initialization, exploration noise) flows through Rng so that
// every experiment is reproducible from a single 64-bit seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
// It is small, fast, and has no global state.
#pragma once

#include <cstdint>
#include <limits>

namespace autohet::common {

/// SplitMix64 step: used to expand a single seed into generator state and to
/// derive independent child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator.
///
/// Satisfies the UniformRandomBitGenerator named requirement so it can be
/// used with <random> distributions, though the convenience members below
/// cover every use in this library.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// The integer k in [0, 2^53) such that uniform() would have returned
  /// k·2⁻⁵³. Lets hot loops compare against a precomputed integer threshold
  /// instead of materializing the double, while consuming the stream
  /// identically to uniform().
  std::uint64_t uniform_bits53() noexcept { return (*this)() >> 11; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = sqrt_neg2log(s);
    cached_ = v * m;
    has_cached_ = true;
    return u * m;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derive an independent child generator; distinct streams for distinct
  /// (seed, stream) pairs.
  Rng child(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
    Rng out(splitmix64(sm));
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // sqrt(-2 ln(s) / s) helper; kept out-of-line of <cmath> constexpr limits.
  static double sqrt_neg2log(double s) noexcept;

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace autohet::common
