// Error-handling helpers.
//
// The library uses exceptions for programmer errors (invalid configuration,
// out-of-range arguments) per the C++ Core Guidelines; AUTOHET_CHECK gives a
// one-line precondition check that throws std::invalid_argument with context.
#pragma once

#include <stdexcept>
#include <string>

namespace autohet::common {

[[noreturn]] inline void fail(const std::string& message) {
  throw std::invalid_argument(message);
}

}  // namespace autohet::common

/// Precondition check: throws std::invalid_argument when `cond` is false.
#define AUTOHET_CHECK(cond, message)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::autohet::common::fail(std::string(__func__) + ": " + (message)); \
    }                                                                     \
  } while (false)
