// Minimal leveled logging to stderr.
//
// Intentionally tiny: benches and examples produce their primary output on
// stdout; logging is for progress/diagnostics and can be silenced globally.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace autohet::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
LogLevel& log_level() noexcept;

/// Serializes concurrent log writes from the thread pool.
std::mutex& log_mutex() noexcept;

void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace autohet::common
