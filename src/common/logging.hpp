// Minimal leveled logging to stderr.
//
// Intentionally tiny: benches and examples produce their primary output on
// stdout; logging is for progress/diagnostics and can be silenced globally.
// Each line carries a monotonic timestamp (seconds since process start, the
// same clock the trace spans use — see obs/clock.hpp) and a dense thread id,
// so plain logs correlate with Chrome-trace timelines.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

namespace autohet::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Read lock-free from
/// pool threads, so it is stored in an atomic — mutate via set_log_level.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "debug" / "info" / "warn" ("warning") / "error" / "off".
/// Returns false (leaving *out untouched) on anything else.
bool parse_log_level(std::string_view text, LogLevel* out) noexcept;
std::string_view log_level_name(LogLevel level) noexcept;

/// Serializes concurrent log writes from the thread pool.
std::mutex& log_mutex() noexcept;

void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace autohet::common
