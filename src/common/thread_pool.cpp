#include "common/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace autohet::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    // Published under the lock so the gauge's last value always reflects
    // the latest queue state (depths from racing submits/workers would
    // otherwise land out of order).
    OBS_GAUGE_SET("autohet_pool_queue_depth", queue_.size());
    OBS_TRACE_COUNTER("pool_queue_depth", queue_.size());
  }
  OBS_COUNTER_ADD("autohet_pool_tasks_total", 1);
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      OBS_GAUGE_SET("autohet_pool_queue_depth", queue_.size());
      OBS_TRACE_COUNTER("pool_queue_depth", queue_.size());
    }
    {
      OBS_SPAN("pool_task");
      OBS_SCOPED_LATENCY("autohet_pool_task_latency_ns");
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace autohet::common
