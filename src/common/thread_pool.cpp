#include "common/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace autohet::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    // Published under the lock so the gauge's last value always reflects
    // the latest queue state (depths from racing submits/workers would
    // otherwise land out of order).
    OBS_GAUGE_SET("autohet_pool_queue_depth", queue_.size());
    OBS_TRACE_COUNTER("pool_queue_depth", queue_.size());
  }
  OBS_COUNTER_ADD("autohet_pool_tasks_total", 1);
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  // Per-call state on the caller's stack, shared with the helper tasks via
  // shared_ptr (a helper may still be waking up after the call returned).
  // The caller claims and runs items itself, so the call completes even if
  // no worker ever picks a helper up — the property that makes nested and
  // concurrent parallel_for calls deadlock-free.
  struct State {
    std::atomic<std::size_t> next;
    std::size_t end;
    const std::function<void(std::size_t)>* fn;
    std::atomic<std::size_t> done{0};
    std::size_t total;
    std::mutex m;
    std::condition_variable cv;
  };
  auto st = std::make_shared<State>();
  st->next.store(begin, std::memory_order_relaxed);
  st->end = end;
  st->fn = &fn;
  st->total = end - begin;

  const auto drain = [](const std::shared_ptr<State>& s) {
    std::size_t ran = 0;
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->end) break;
      (*s->fn)(i);
      ++ran;
    }
    if (ran == 0) return;
    // The finisher (done == total) must notify under the lock so the caller
    // cannot miss the wake-up between its predicate check and its wait.
    if (s->done.fetch_add(ran, std::memory_order_acq_rel) + ran == s->total) {
      std::lock_guard<std::mutex> lock(s->m);
      s->cv.notify_all();
    }
  };

  // The caller handles one item's worth of work itself, so at most n - 1
  // helpers are useful; capping at the worker count bounds queue traffic.
  const std::size_t helpers =
      std::min(workers_.size(), st->total - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([st, drain] { drain(st); });
  }
  drain(st);
  std::unique_lock<std::mutex> lock(st->m);
  st->cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) == st->total;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      OBS_GAUGE_SET("autohet_pool_queue_depth", queue_.size());
      OBS_TRACE_COUNTER("pool_queue_depth", queue_.size());
    }
    {
      OBS_SPAN("pool_task");
      OBS_SCOPED_LATENCY("autohet_pool_task_latency_ns");
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace autohet::common
