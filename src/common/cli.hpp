// Minimal GNU-style command-line parser for the example/driver binaries.
//
// Supports boolean flags (--tile-shared), valued options (--episodes 300 or
// --episodes=300), and positional arguments. Unknown arguments are parse
// errors; --help renders a usage text built from the registered options.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace autohet::common {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& help);
  /// Registers a valued option with a default.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Registers a repeatable valued option (--plan-in a.json --plan-in
  /// b.json). option() returns the last occurrence; option_list() all of
  /// them in order.
  void add_multi_option(const std::string& name, const std::string& help);
  /// Registers a named positional argument (required, in order).
  void add_positional(const std::string& name, const std::string& help);
  /// Registers an optional positional argument with a default. Optional
  /// positionals must be registered after every required one and are
  /// filled left-to-right by the remaining arguments.
  void add_optional_positional(const std::string& name,
                               const std::string& default_value,
                               const std::string& help);

  /// Parses argv. Returns false and fills *error on malformed input or when
  /// --help was requested (error is then the help text).
  bool parse(int argc, const char* const* argv, std::string* error);

  bool flag(const std::string& name) const;
  /// True when the user supplied this flag/option on the command line
  /// (a registered option left at its default returns false).
  bool provided(const std::string& name) const;
  /// After parse(): if `gate` was provided together with any of `conflicts`,
  /// fills *error with "--gate cannot be combined with --other" and returns
  /// false. For mutually exclusive operating modes (e.g. replaying a saved
  /// plan vs. configuring a fresh search).
  bool reject_option_conflicts(const std::string& gate,
                               const std::vector<std::string>& conflicts,
                               std::string* error) const;
  const std::string& option(const std::string& name) const;
  /// Every occurrence of a repeatable option, in command-line order (empty
  /// when the option was never supplied).
  const std::vector<std::string>& option_list(const std::string& name) const;
  std::int64_t option_int(const std::string& name) const;
  double option_double(const std::string& name) const;
  const std::string& positional(const std::string& name) const;

  std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string value;
    std::vector<std::string> values;  ///< every occurrence (multi options)
    std::string help;
    bool is_flag = false;
    bool is_multi = false;
    bool seen = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_names_;
  std::vector<std::string> positional_help_;
  std::size_t required_positionals_ = 0;
  std::map<std::string, std::string> positional_values_;
};

}  // namespace autohet::common
