// Fixed-size thread pool with a parallel_for helper.
//
// Used by the search drivers to evaluate independent accelerator
// configurations concurrently (e.g. the homogeneous baseline sweep and the
// search-time benchmark), and by the functional simulator to split one
// forward pass across row blocks / position tiles. Work items must be
// independent; the pool provides no ordering guarantees beyond
// wait()/parallel_for joining all tasks.
//
// parallel_for is safe to call concurrently from several threads and to
// nest (a pool task may itself call parallel_for on the same pool): each
// call owns its iteration state, the calling thread participates in
// draining its own items, and completion is tracked per call — never
// through the pool-global task count.
//
// Instrumented (src/obs): queue depth is exported as the
// `autohet_pool_queue_depth` gauge and a `pool_queue_depth` trace counter
// track; each task runs inside a `pool_task` span and feeds the
// `autohet_pool_task_latency_ns` histogram.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autohet::common {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the program (there is no result channel to carry them).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Do not call from
  /// inside a pool task (it would count itself); use parallel_for for
  /// nested fan-out.
  void wait();

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until done.
  /// The caller drains items too, so progress is guaranteed even when every
  /// worker is busy — which makes nested and concurrent calls safe (and the
  /// single-worker pool degrade to a plain loop on the calling thread).
  /// Items are claimed one at a time from a shared cursor, so a slow item
  /// never holds a whole pre-carved chunk hostage.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace autohet::common
