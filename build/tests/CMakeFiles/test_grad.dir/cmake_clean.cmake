file(REMOVE_RECURSE
  "CMakeFiles/test_grad.dir/test_grad.cpp.o"
  "CMakeFiles/test_grad.dir/test_grad.cpp.o.d"
  "test_grad"
  "test_grad.pdb"
  "test_grad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
