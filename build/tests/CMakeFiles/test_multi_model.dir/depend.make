# Empty dependencies file for test_multi_model.
# This may be replaced when dependencies are built.
