file(REMOVE_RECURSE
  "CMakeFiles/test_multi_model.dir/test_multi_model.cpp.o"
  "CMakeFiles/test_multi_model.dir/test_multi_model.cpp.o.d"
  "test_multi_model"
  "test_multi_model.pdb"
  "test_multi_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
