file(REMOVE_RECURSE
  "CMakeFiles/test_programming.dir/test_programming.cpp.o"
  "CMakeFiles/test_programming.dir/test_programming.cpp.o.d"
  "test_programming"
  "test_programming.pdb"
  "test_programming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
