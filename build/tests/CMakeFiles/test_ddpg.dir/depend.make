# Empty dependencies file for test_ddpg.
# This may be replaced when dependencies are built.
