# Empty dependencies file for test_energy_formula.
# This may be replaced when dependencies are built.
