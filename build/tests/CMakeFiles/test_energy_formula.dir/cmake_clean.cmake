file(REMOVE_RECURSE
  "CMakeFiles/test_energy_formula.dir/test_energy_formula.cpp.o"
  "CMakeFiles/test_energy_formula.dir/test_energy_formula.cpp.o.d"
  "test_energy_formula"
  "test_energy_formula.pdb"
  "test_energy_formula[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
