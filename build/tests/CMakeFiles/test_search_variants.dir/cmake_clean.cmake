file(REMOVE_RECURSE
  "CMakeFiles/test_search_variants.dir/test_search_variants.cpp.o"
  "CMakeFiles/test_search_variants.dir/test_search_variants.cpp.o.d"
  "test_search_variants"
  "test_search_variants.pdb"
  "test_search_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
