
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hardware_model.cpp" "tests/CMakeFiles/test_hardware_model.dir/test_hardware_model.cpp.o" "gcc" "tests/CMakeFiles/test_hardware_model.dir/test_hardware_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autohet/CMakeFiles/autohet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/autohet_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/autohet_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autohet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/autohet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/autohet_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/autohet_report.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autohet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
