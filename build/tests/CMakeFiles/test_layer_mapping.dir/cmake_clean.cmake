file(REMOVE_RECURSE
  "CMakeFiles/test_layer_mapping.dir/test_layer_mapping.cpp.o"
  "CMakeFiles/test_layer_mapping.dir/test_layer_mapping.cpp.o.d"
  "test_layer_mapping"
  "test_layer_mapping.pdb"
  "test_layer_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
