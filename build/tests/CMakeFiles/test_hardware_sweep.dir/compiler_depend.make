# Empty compiler generated dependencies file for test_hardware_sweep.
# This may be replaced when dependencies are built.
