file(REMOVE_RECURSE
  "CMakeFiles/test_hardware_sweep.dir/test_hardware_sweep.cpp.o"
  "CMakeFiles/test_hardware_sweep.dir/test_hardware_sweep.cpp.o.d"
  "test_hardware_sweep"
  "test_hardware_sweep.pdb"
  "test_hardware_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardware_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
