# Empty dependencies file for test_tile_allocator.
# This may be replaced when dependencies are built.
