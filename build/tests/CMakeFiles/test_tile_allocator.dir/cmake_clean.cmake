file(REMOVE_RECURSE
  "CMakeFiles/test_tile_allocator.dir/test_tile_allocator.cpp.o"
  "CMakeFiles/test_tile_allocator.dir/test_tile_allocator.cpp.o.d"
  "test_tile_allocator"
  "test_tile_allocator.pdb"
  "test_tile_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
