file(REMOVE_RECURSE
  "CMakeFiles/tile_sharing.dir/tile_sharing.cpp.o"
  "CMakeFiles/tile_sharing.dir/tile_sharing.cpp.o.d"
  "tile_sharing"
  "tile_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
