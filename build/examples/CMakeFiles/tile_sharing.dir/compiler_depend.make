# Empty compiler generated dependencies file for tile_sharing.
# This may be replaced when dependencies are built.
