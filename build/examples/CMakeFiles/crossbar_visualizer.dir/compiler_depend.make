# Empty compiler generated dependencies file for crossbar_visualizer.
# This may be replaced when dependencies are built.
