file(REMOVE_RECURSE
  "CMakeFiles/crossbar_visualizer.dir/crossbar_visualizer.cpp.o"
  "CMakeFiles/crossbar_visualizer.dir/crossbar_visualizer.cpp.o.d"
  "crossbar_visualizer"
  "crossbar_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
