# Empty dependencies file for functional_inference.
# This may be replaced when dependencies are built.
