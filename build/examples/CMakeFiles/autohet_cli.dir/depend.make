# Empty dependencies file for autohet_cli.
# This may be replaced when dependencies are built.
