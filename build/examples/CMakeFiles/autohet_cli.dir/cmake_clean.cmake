file(REMOVE_RECURSE
  "CMakeFiles/autohet_cli.dir/autohet_cli.cpp.o"
  "CMakeFiles/autohet_cli.dir/autohet_cli.cpp.o.d"
  "autohet_cli"
  "autohet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
