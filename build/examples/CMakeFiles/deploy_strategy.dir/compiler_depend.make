# Empty compiler generated dependencies file for deploy_strategy.
# This may be replaced when dependencies are built.
