file(REMOVE_RECURSE
  "CMakeFiles/deploy_strategy.dir/deploy_strategy.cpp.o"
  "CMakeFiles/deploy_strategy.dir/deploy_strategy.cpp.o.d"
  "deploy_strategy"
  "deploy_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
