# Empty dependencies file for train_and_deploy.
# This may be replaced when dependencies are built.
