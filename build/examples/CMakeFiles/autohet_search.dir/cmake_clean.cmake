file(REMOVE_RECURSE
  "CMakeFiles/autohet_search.dir/autohet_search.cpp.o"
  "CMakeFiles/autohet_search.dir/autohet_search.cpp.o.d"
  "autohet_search"
  "autohet_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
