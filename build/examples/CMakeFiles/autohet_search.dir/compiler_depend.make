# Empty compiler generated dependencies file for autohet_search.
# This may be replaced when dependencies are built.
