# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_tile_sharing]=] "/root/repo/build/examples/tile_sharing")
set_tests_properties([=[example_tile_sharing]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_functional_inference]=] "/root/repo/build/examples/functional_inference")
set_tests_properties([=[example_functional_inference]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_deploy_strategy]=] "/root/repo/build/examples/deploy_strategy")
set_tests_properties([=[example_deploy_strategy]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_variation_study]=] "/root/repo/build/examples/variation_study")
set_tests_properties([=[example_variation_study]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_train_and_deploy]=] "/root/repo/build/examples/train_and_deploy")
set_tests_properties([=[example_train_and_deploy]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_crossbar_visualizer]=] "/root/repo/build/examples/crossbar_visualizer")
set_tests_properties([=[example_crossbar_visualizer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_describe]=] "/root/repo/build/examples/autohet_cli" "describe" "--model" "lenet5")
set_tests_properties([=[example_cli_describe]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_baselines]=] "/root/repo/build/examples/autohet_cli" "baselines" "--model" "lenet5")
set_tests_properties([=[example_cli_baselines]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_search]=] "/root/repo/build/examples/autohet_cli" "search" "--model" "lenet5" "--episodes" "20" "--out" "/root/repo/build/examples/smoke_strategy.txt")
set_tests_properties([=[example_cli_search]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_evaluate]=] "/root/repo/build/examples/autohet_cli" "evaluate" "--strategy" "/root/repo/build/examples/smoke_strategy.txt")
set_tests_properties([=[example_cli_evaluate]=] PROPERTIES  DEPENDS "example_cli_search" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_autohet_search]=] "/root/repo/build/examples/autohet_search" "30" "2")
set_tests_properties([=[example_autohet_search]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
