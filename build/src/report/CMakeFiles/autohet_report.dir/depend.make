# Empty dependencies file for autohet_report.
# This may be replaced when dependencies are built.
