file(REMOVE_RECURSE
  "CMakeFiles/autohet_report.dir/serialize.cpp.o"
  "CMakeFiles/autohet_report.dir/serialize.cpp.o.d"
  "CMakeFiles/autohet_report.dir/table.cpp.o"
  "CMakeFiles/autohet_report.dir/table.cpp.o.d"
  "libautohet_report.a"
  "libautohet_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
