file(REMOVE_RECURSE
  "libautohet_report.a"
)
