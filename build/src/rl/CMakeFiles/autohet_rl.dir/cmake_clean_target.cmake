file(REMOVE_RECURSE
  "libautohet_rl.a"
)
