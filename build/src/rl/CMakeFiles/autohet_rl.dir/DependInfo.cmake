
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/adam.cpp" "src/rl/CMakeFiles/autohet_rl.dir/adam.cpp.o" "gcc" "src/rl/CMakeFiles/autohet_rl.dir/adam.cpp.o.d"
  "/root/repo/src/rl/ddpg.cpp" "src/rl/CMakeFiles/autohet_rl.dir/ddpg.cpp.o" "gcc" "src/rl/CMakeFiles/autohet_rl.dir/ddpg.cpp.o.d"
  "/root/repo/src/rl/mlp.cpp" "src/rl/CMakeFiles/autohet_rl.dir/mlp.cpp.o" "gcc" "src/rl/CMakeFiles/autohet_rl.dir/mlp.cpp.o.d"
  "/root/repo/src/rl/prioritized_replay.cpp" "src/rl/CMakeFiles/autohet_rl.dir/prioritized_replay.cpp.o" "gcc" "src/rl/CMakeFiles/autohet_rl.dir/prioritized_replay.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "src/rl/CMakeFiles/autohet_rl.dir/replay_buffer.cpp.o" "gcc" "src/rl/CMakeFiles/autohet_rl.dir/replay_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autohet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
