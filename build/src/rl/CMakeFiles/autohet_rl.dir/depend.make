# Empty dependencies file for autohet_rl.
# This may be replaced when dependencies are built.
