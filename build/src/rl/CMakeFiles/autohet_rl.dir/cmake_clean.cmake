file(REMOVE_RECURSE
  "CMakeFiles/autohet_rl.dir/adam.cpp.o"
  "CMakeFiles/autohet_rl.dir/adam.cpp.o.d"
  "CMakeFiles/autohet_rl.dir/ddpg.cpp.o"
  "CMakeFiles/autohet_rl.dir/ddpg.cpp.o.d"
  "CMakeFiles/autohet_rl.dir/mlp.cpp.o"
  "CMakeFiles/autohet_rl.dir/mlp.cpp.o.d"
  "CMakeFiles/autohet_rl.dir/prioritized_replay.cpp.o"
  "CMakeFiles/autohet_rl.dir/prioritized_replay.cpp.o.d"
  "CMakeFiles/autohet_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/autohet_rl.dir/replay_buffer.cpp.o.d"
  "libautohet_rl.a"
  "libautohet_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
