file(REMOVE_RECURSE
  "CMakeFiles/autohet_nn.dir/describe.cpp.o"
  "CMakeFiles/autohet_nn.dir/describe.cpp.o.d"
  "CMakeFiles/autohet_nn.dir/layer.cpp.o"
  "CMakeFiles/autohet_nn.dir/layer.cpp.o.d"
  "CMakeFiles/autohet_nn.dir/model.cpp.o"
  "CMakeFiles/autohet_nn.dir/model.cpp.o.d"
  "CMakeFiles/autohet_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/autohet_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/autohet_nn.dir/quantize.cpp.o"
  "CMakeFiles/autohet_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/autohet_nn.dir/train.cpp.o"
  "CMakeFiles/autohet_nn.dir/train.cpp.o.d"
  "libautohet_nn.a"
  "libautohet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
