file(REMOVE_RECURSE
  "libautohet_nn.a"
)
