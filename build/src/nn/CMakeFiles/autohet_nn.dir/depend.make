# Empty dependencies file for autohet_nn.
# This may be replaced when dependencies are built.
