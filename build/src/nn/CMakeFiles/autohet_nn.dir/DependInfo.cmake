
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/describe.cpp" "src/nn/CMakeFiles/autohet_nn.dir/describe.cpp.o" "gcc" "src/nn/CMakeFiles/autohet_nn.dir/describe.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/autohet_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/autohet_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/autohet_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/autohet_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/autohet_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/autohet_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/autohet_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/autohet_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/autohet_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/autohet_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/autohet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autohet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
