# Empty dependencies file for autohet_mapping.
# This may be replaced when dependencies are built.
