
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/crossbar_shape.cpp" "src/mapping/CMakeFiles/autohet_mapping.dir/crossbar_shape.cpp.o" "gcc" "src/mapping/CMakeFiles/autohet_mapping.dir/crossbar_shape.cpp.o.d"
  "/root/repo/src/mapping/layer_mapping.cpp" "src/mapping/CMakeFiles/autohet_mapping.dir/layer_mapping.cpp.o" "gcc" "src/mapping/CMakeFiles/autohet_mapping.dir/layer_mapping.cpp.o.d"
  "/root/repo/src/mapping/multi_model.cpp" "src/mapping/CMakeFiles/autohet_mapping.dir/multi_model.cpp.o" "gcc" "src/mapping/CMakeFiles/autohet_mapping.dir/multi_model.cpp.o.d"
  "/root/repo/src/mapping/tile_allocator.cpp" "src/mapping/CMakeFiles/autohet_mapping.dir/tile_allocator.cpp.o" "gcc" "src/mapping/CMakeFiles/autohet_mapping.dir/tile_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/autohet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/autohet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autohet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
