file(REMOVE_RECURSE
  "CMakeFiles/autohet_mapping.dir/crossbar_shape.cpp.o"
  "CMakeFiles/autohet_mapping.dir/crossbar_shape.cpp.o.d"
  "CMakeFiles/autohet_mapping.dir/layer_mapping.cpp.o"
  "CMakeFiles/autohet_mapping.dir/layer_mapping.cpp.o.d"
  "CMakeFiles/autohet_mapping.dir/multi_model.cpp.o"
  "CMakeFiles/autohet_mapping.dir/multi_model.cpp.o.d"
  "CMakeFiles/autohet_mapping.dir/tile_allocator.cpp.o"
  "CMakeFiles/autohet_mapping.dir/tile_allocator.cpp.o.d"
  "libautohet_mapping.a"
  "libautohet_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
