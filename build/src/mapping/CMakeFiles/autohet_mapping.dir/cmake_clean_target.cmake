file(REMOVE_RECURSE
  "libautohet_mapping.a"
)
