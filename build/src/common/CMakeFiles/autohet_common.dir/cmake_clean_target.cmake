file(REMOVE_RECURSE
  "libautohet_common.a"
)
