# Empty dependencies file for autohet_common.
# This may be replaced when dependencies are built.
