file(REMOVE_RECURSE
  "CMakeFiles/autohet_common.dir/cli.cpp.o"
  "CMakeFiles/autohet_common.dir/cli.cpp.o.d"
  "CMakeFiles/autohet_common.dir/logging.cpp.o"
  "CMakeFiles/autohet_common.dir/logging.cpp.o.d"
  "CMakeFiles/autohet_common.dir/rng.cpp.o"
  "CMakeFiles/autohet_common.dir/rng.cpp.o.d"
  "CMakeFiles/autohet_common.dir/thread_pool.cpp.o"
  "CMakeFiles/autohet_common.dir/thread_pool.cpp.o.d"
  "libautohet_common.a"
  "libautohet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
