file(REMOVE_RECURSE
  "CMakeFiles/autohet_tensor.dir/grad.cpp.o"
  "CMakeFiles/autohet_tensor.dir/grad.cpp.o.d"
  "CMakeFiles/autohet_tensor.dir/ops.cpp.o"
  "CMakeFiles/autohet_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/autohet_tensor.dir/tensor.cpp.o"
  "CMakeFiles/autohet_tensor.dir/tensor.cpp.o.d"
  "libautohet_tensor.a"
  "libautohet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
