file(REMOVE_RECURSE
  "libautohet_tensor.a"
)
