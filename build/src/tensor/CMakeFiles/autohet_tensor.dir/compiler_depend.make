# Empty compiler generated dependencies file for autohet_tensor.
# This may be replaced when dependencies are built.
