file(REMOVE_RECURSE
  "CMakeFiles/autohet_reram.dir/bank.cpp.o"
  "CMakeFiles/autohet_reram.dir/bank.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/components.cpp.o"
  "CMakeFiles/autohet_reram.dir/components.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/controller.cpp.o"
  "CMakeFiles/autohet_reram.dir/controller.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/crossbar.cpp.o"
  "CMakeFiles/autohet_reram.dir/crossbar.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/functional.cpp.o"
  "CMakeFiles/autohet_reram.dir/functional.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/hardware_model.cpp.o"
  "CMakeFiles/autohet_reram.dir/hardware_model.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/noc.cpp.o"
  "CMakeFiles/autohet_reram.dir/noc.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/pipeline.cpp.o"
  "CMakeFiles/autohet_reram.dir/pipeline.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/programming.cpp.o"
  "CMakeFiles/autohet_reram.dir/programming.cpp.o.d"
  "CMakeFiles/autohet_reram.dir/scheduler.cpp.o"
  "CMakeFiles/autohet_reram.dir/scheduler.cpp.o.d"
  "libautohet_reram.a"
  "libautohet_reram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_reram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
