file(REMOVE_RECURSE
  "libautohet_reram.a"
)
