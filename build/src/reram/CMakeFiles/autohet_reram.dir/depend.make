# Empty dependencies file for autohet_reram.
# This may be replaced when dependencies are built.
