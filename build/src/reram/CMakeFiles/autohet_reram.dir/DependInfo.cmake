
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reram/bank.cpp" "src/reram/CMakeFiles/autohet_reram.dir/bank.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/bank.cpp.o.d"
  "/root/repo/src/reram/components.cpp" "src/reram/CMakeFiles/autohet_reram.dir/components.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/components.cpp.o.d"
  "/root/repo/src/reram/controller.cpp" "src/reram/CMakeFiles/autohet_reram.dir/controller.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/controller.cpp.o.d"
  "/root/repo/src/reram/crossbar.cpp" "src/reram/CMakeFiles/autohet_reram.dir/crossbar.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/crossbar.cpp.o.d"
  "/root/repo/src/reram/functional.cpp" "src/reram/CMakeFiles/autohet_reram.dir/functional.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/functional.cpp.o.d"
  "/root/repo/src/reram/hardware_model.cpp" "src/reram/CMakeFiles/autohet_reram.dir/hardware_model.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/hardware_model.cpp.o.d"
  "/root/repo/src/reram/noc.cpp" "src/reram/CMakeFiles/autohet_reram.dir/noc.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/noc.cpp.o.d"
  "/root/repo/src/reram/pipeline.cpp" "src/reram/CMakeFiles/autohet_reram.dir/pipeline.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/pipeline.cpp.o.d"
  "/root/repo/src/reram/programming.cpp" "src/reram/CMakeFiles/autohet_reram.dir/programming.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/programming.cpp.o.d"
  "/root/repo/src/reram/scheduler.cpp" "src/reram/CMakeFiles/autohet_reram.dir/scheduler.cpp.o" "gcc" "src/reram/CMakeFiles/autohet_reram.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/autohet_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autohet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/autohet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autohet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
