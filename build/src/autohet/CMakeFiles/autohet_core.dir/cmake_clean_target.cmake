file(REMOVE_RECURSE
  "libautohet_core.a"
)
