file(REMOVE_RECURSE
  "CMakeFiles/autohet_core.dir/baselines.cpp.o"
  "CMakeFiles/autohet_core.dir/baselines.cpp.o.d"
  "CMakeFiles/autohet_core.dir/env.cpp.o"
  "CMakeFiles/autohet_core.dir/env.cpp.o.d"
  "CMakeFiles/autohet_core.dir/search.cpp.o"
  "CMakeFiles/autohet_core.dir/search.cpp.o.d"
  "CMakeFiles/autohet_core.dir/strategy.cpp.o"
  "CMakeFiles/autohet_core.dir/strategy.cpp.o.d"
  "libautohet_core.a"
  "libautohet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autohet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
