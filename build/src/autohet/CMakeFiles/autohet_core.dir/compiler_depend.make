# Empty compiler generated dependencies file for autohet_core.
# This may be replaced when dependencies are built.
