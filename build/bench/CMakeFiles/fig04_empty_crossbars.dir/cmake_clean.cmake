file(REMOVE_RECURSE
  "CMakeFiles/fig04_empty_crossbars.dir/fig04_empty_crossbars.cpp.o"
  "CMakeFiles/fig04_empty_crossbars.dir/fig04_empty_crossbars.cpp.o.d"
  "fig04_empty_crossbars"
  "fig04_empty_crossbars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_empty_crossbars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
