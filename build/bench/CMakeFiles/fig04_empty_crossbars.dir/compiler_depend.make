# Empty compiler generated dependencies file for fig04_empty_crossbars.
# This may be replaced when dependencies are built.
