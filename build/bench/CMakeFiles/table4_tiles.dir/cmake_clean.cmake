file(REMOVE_RECURSE
  "CMakeFiles/table4_tiles.dir/table4_tiles.cpp.o"
  "CMakeFiles/table4_tiles.dir/table4_tiles.cpp.o.d"
  "table4_tiles"
  "table4_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
