# Empty compiler generated dependencies file for table4_tiles.
# This may be replaced when dependencies are built.
