# Empty dependencies file for fig09_overall.
# This may be replaced when dependencies are built.
