file(REMOVE_RECURSE
  "CMakeFiles/ablation_adc_sharing.dir/ablation_adc_sharing.cpp.o"
  "CMakeFiles/ablation_adc_sharing.dir/ablation_adc_sharing.cpp.o.d"
  "ablation_adc_sharing"
  "ablation_adc_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adc_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
