# Empty dependencies file for ablation_adc_sharing.
# This may be replaced when dependencies are built.
