# Empty compiler generated dependencies file for ablation_cell_precision.
# This may be replaced when dependencies are built.
