file(REMOVE_RECURSE
  "CMakeFiles/ablation_cell_precision.dir/ablation_cell_precision.cpp.o"
  "CMakeFiles/ablation_cell_precision.dir/ablation_cell_precision.cpp.o.d"
  "ablation_cell_precision"
  "ablation_cell_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cell_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
