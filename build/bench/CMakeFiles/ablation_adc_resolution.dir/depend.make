# Empty dependencies file for ablation_adc_resolution.
# This may be replaced when dependencies are built.
