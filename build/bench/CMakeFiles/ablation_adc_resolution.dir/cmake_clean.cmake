file(REMOVE_RECURSE
  "CMakeFiles/ablation_adc_resolution.dir/ablation_adc_resolution.cpp.o"
  "CMakeFiles/ablation_adc_resolution.dir/ablation_adc_resolution.cpp.o.d"
  "ablation_adc_resolution"
  "ablation_adc_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adc_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
