file(REMOVE_RECURSE
  "CMakeFiles/table5_area_latency.dir/table5_area_latency.cpp.o"
  "CMakeFiles/table5_area_latency.dir/table5_area_latency.cpp.o.d"
  "table5_area_latency"
  "table5_area_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_area_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
