file(REMOVE_RECURSE
  "CMakeFiles/table3_layer_sizes.dir/table3_layer_sizes.cpp.o"
  "CMakeFiles/table3_layer_sizes.dir/table3_layer_sizes.cpp.o.d"
  "table3_layer_sizes"
  "table3_layer_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_layer_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
