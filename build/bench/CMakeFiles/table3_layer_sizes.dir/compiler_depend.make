# Empty compiler generated dependencies file for table3_layer_sizes.
# This may be replaced when dependencies are built.
