# Empty dependencies file for search_convergence.
# This may be replaced when dependencies are built.
