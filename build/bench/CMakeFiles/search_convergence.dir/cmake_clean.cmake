file(REMOVE_RECURSE
  "CMakeFiles/search_convergence.dir/search_convergence.cpp.o"
  "CMakeFiles/search_convergence.dir/search_convergence.cpp.o.d"
  "search_convergence"
  "search_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
