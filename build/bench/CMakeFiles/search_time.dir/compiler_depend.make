# Empty compiler generated dependencies file for search_time.
# This may be replaced when dependencies are built.
