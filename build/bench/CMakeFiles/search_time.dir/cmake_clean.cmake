file(REMOVE_RECURSE
  "CMakeFiles/search_time.dir/search_time.cpp.o"
  "CMakeFiles/search_time.dir/search_time.cpp.o.d"
  "search_time"
  "search_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
