# Empty compiler generated dependencies file for multi_model_residency.
# This may be replaced when dependencies are built.
