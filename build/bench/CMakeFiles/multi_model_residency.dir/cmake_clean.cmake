file(REMOVE_RECURSE
  "CMakeFiles/multi_model_residency.dir/multi_model_residency.cpp.o"
  "CMakeFiles/multi_model_residency.dir/multi_model_residency.cpp.o.d"
  "multi_model_residency"
  "multi_model_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_model_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
