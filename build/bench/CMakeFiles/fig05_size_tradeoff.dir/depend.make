# Empty dependencies file for fig05_size_tradeoff.
# This may be replaced when dependencies are built.
