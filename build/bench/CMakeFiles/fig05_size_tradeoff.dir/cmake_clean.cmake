file(REMOVE_RECURSE
  "CMakeFiles/fig05_size_tradeoff.dir/fig05_size_tradeoff.cpp.o"
  "CMakeFiles/fig05_size_tradeoff.dir/fig05_size_tradeoff.cpp.o.d"
  "fig05_size_tradeoff"
  "fig05_size_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_size_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
